#include "data/csv.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace duet::data {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (char ch : line) {
    if (ch == '"') {
      quoted = !quoted;
    } else if (ch == ',' && !quoted) {
      cells.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  cells.push_back(cur);
  return cells;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Table LoadCsv(std::istream& in, const std::string& table_name) {
  std::string line;
  DUET_CHECK(static_cast<bool>(std::getline(in, line))) << "empty CSV";
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::vector<std::string> header = SplitCsvLine(line);
  const size_t ncols = header.size();
  DUET_CHECK_GT(ncols, 0u);

  std::vector<std::vector<std::string>> raw(ncols);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    DUET_CHECK_EQ(cells.size(), ncols) << "ragged CSV row";
    for (size_t c = 0; c < ncols; ++c) raw[c].push_back(cells[c]);
  }
  DUET_CHECK(!raw[0].empty()) << "CSV has no data rows";

  std::vector<Column> columns;
  for (size_t c = 0; c < ncols; ++c) {
    // A column is numeric iff every non-empty cell parses as a double.
    bool numeric = true;
    for (const std::string& cell : raw[c]) {
      double unused;
      if (!cell.empty() && !ParseDouble(cell, &unused)) {
        numeric = false;
        break;
      }
    }
    std::vector<double> values(raw[c].size());
    if (numeric) {
      double min_seen = 0.0;
      bool have_min = false;
      for (const std::string& cell : raw[c]) {
        double v = 0.0;
        if (ParseDouble(cell, &v) && (!have_min || v < min_seen)) {
          min_seen = v;
          have_min = true;
        }
      }
      for (size_t r = 0; r < raw[c].size(); ++r) {
        double v = min_seen;
        ParseDouble(raw[c][r], &v);
        values[r] = v;
      }
    } else {
      // Lexicographic string dictionary -> double codes.
      std::map<std::string, double> dict;
      for (const std::string& cell : raw[c]) dict[cell] = 0.0;
      double code = 0.0;
      for (auto& [key, val] : dict) {
        val = code;
        code += 1.0;
      }
      for (size_t r = 0; r < raw[c].size(); ++r) values[r] = dict[raw[c][r]];
    }
    columns.push_back(Column::FromValues(header[c], values));
  }
  return Table(table_name, std::move(columns));
}

Table LoadCsvFile(const std::string& path, const std::string& table_name) {
  std::ifstream in(path);
  DUET_CHECK(in.is_open()) << "cannot open " << path;
  return LoadCsv(in, table_name);
}

void SaveCsv(const Table& table, std::ostream& out) {
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out << ",";
    out << table.column(c).name();
  }
  out << "\n";
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ",";
      out << table.column(c).Value(table.code(r, c));
    }
    out << "\n";
  }
}

}  // namespace duet::data
