#include "data/table_io.h"

#include <fstream>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace duet::data {

namespace {
constexpr uint32_t kMagic = 0x44555442;  // "DUTB"
constexpr uint32_t kVersion = 1;
}  // namespace

void SaveTable(BinaryWriter& w, const Table& table) {
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteString(table.name());
  w.WriteU64(static_cast<uint64_t>(table.num_columns()));
  w.WriteI64(table.num_rows());
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    w.WriteString(col.name());
    // Dictionary (doubles), then codes (int32 packed via u32).
    w.WriteU64(static_cast<uint64_t>(col.ndv()));
    for (double v : col.distinct()) w.WriteF64(v);
    std::vector<uint32_t> codes(col.codes().begin(), col.codes().end());
    w.WriteU32Vector(codes);
  }
}

Table LoadTable(BinaryReader& r) {
  const uint32_t magic = r.ReadU32();
  DUET_CHECK_EQ(magic, kMagic) << "not a duet table cache";
  const uint32_t version = r.ReadU32();
  DUET_CHECK_EQ(version, kVersion) << "unsupported table-cache version";
  const std::string name = r.ReadString();
  const uint64_t num_columns = r.ReadU64();
  const int64_t num_rows = r.ReadI64();
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    const std::string col_name = r.ReadString();
    const uint64_t ndv = r.ReadU64();
    std::vector<double> distinct(ndv);
    for (uint64_t v = 0; v < ndv; ++v) distinct[v] = r.ReadF64();
    const std::vector<uint32_t> raw = r.ReadU32Vector();
    DUET_CHECK_EQ(static_cast<int64_t>(raw.size()), num_rows)
        << "row-count mismatch in column " << col_name;
    std::vector<int32_t> codes(raw.begin(), raw.end());
    columns.push_back(Column::FromCodes(col_name, std::move(codes), std::move(distinct)));
  }
  return Table(name, std::move(columns));
}

void SaveTableFile(const std::string& path, const Table& table) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DUET_CHECK(out.good()) << "cannot open table cache for writing: " << path;
  BinaryWriter w(out);
  SaveTable(w, table);
  out.flush();
  DUET_CHECK(out.good()) << "short write on table cache: " << path;
}

Table LoadTableFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DUET_CHECK(in.good()) << "cannot open table cache: " << path;
  BinaryReader r(in);
  return LoadTable(r);
}

}  // namespace duet::data
