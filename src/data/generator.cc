#include "data/generator.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace duet::data {

namespace {

/// Mixes a latent value into a column-specific code deterministically
/// (splitmix-style finalizer) so columns sharing a latent factor are strongly
/// but not trivially correlated.
int32_t LatentToCode(int64_t latent, int col, int32_t ndv) {
  uint64_t z = static_cast<uint64_t>(latent) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(col) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int32_t>(z % static_cast<uint64_t>(ndv));
}

}  // namespace

Table GenerateSynthetic(const SyntheticSpec& spec) {
  DUET_CHECK_GT(spec.rows, 0);
  DUET_CHECK(!spec.columns.empty());
  DUET_CHECK_GT(spec.num_latent, 0);
  Rng rng(spec.seed);

  // Latent factor stream per row.
  ZipfDistribution latent_dist(static_cast<uint32_t>(spec.latent_cardinality),
                               spec.latent_zipf_s);
  std::vector<std::vector<int32_t>> latent(static_cast<size_t>(spec.num_latent));
  for (auto& l : latent) {
    l.resize(static_cast<size_t>(spec.rows));
    for (int64_t r = 0; r < spec.rows; ++r) {
      l[static_cast<size_t>(r)] = static_cast<int32_t>(latent_dist.Sample(rng));
    }
  }

  std::vector<Column> columns;
  columns.reserve(spec.columns.size());
  for (size_t ci = 0; ci < spec.columns.size(); ++ci) {
    const ColumnSpec& cs = spec.columns[ci];
    DUET_CHECK_GE(cs.ndv, 2);
    DUET_CHECK_GE(cs.latent, 0);
    DUET_CHECK_LT(cs.latent, spec.num_latent);
    ZipfDistribution indep(static_cast<uint32_t>(cs.ndv), cs.zipf_s);
    // Column-specific permutation decorrelates rank order across columns so
    // "rank 0 of column A" is not always co-located with "rank 0 of column B".
    const std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(cs.ndv));
    // Dictionary with irregular gaps: exercises value->code mapping paths.
    std::vector<double> dict(static_cast<size_t>(cs.ndv));
    double v = rng.UniformDouble() * 10.0;
    for (int32_t c = 0; c < cs.ndv; ++c) {
      dict[static_cast<size_t>(c)] = v;
      v += 0.5 + rng.UniformDouble() * 9.5;
    }
    std::vector<double> values(static_cast<size_t>(spec.rows));
    const std::vector<int32_t>& lat = latent[static_cast<size_t>(cs.latent)];
    for (int64_t r = 0; r < spec.rows; ++r) {
      int32_t code;
      if (rng.Bernoulli(cs.correlation)) {
        code = LatentToCode(lat[static_cast<size_t>(r)], static_cast<int>(ci), cs.ndv);
      } else {
        code = static_cast<int32_t>(perm[indep.Sample(rng)]);
      }
      values[static_cast<size_t>(r)] = dict[static_cast<size_t>(code)];
    }
    columns.push_back(Column::FromValues("col" + std::to_string(ci), values));
  }
  return Table(spec.name, std::move(columns));
}

Table CensusLike(int64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "census_like";
  spec.rows = rows;
  spec.seed = seed;
  spec.num_latent = 2;
  spec.latent_cardinality = 150;
  // NDV profile modeled on UCI Census (paper: 14 columns, NDV 2..123).
  const int32_t ndvs[] = {9, 16, 7, 14, 6, 5, 2, 41, 52, 94, 123, 99, 42, 2};
  const double zipf[] = {0.9, 0.7, 1.2, 0.8, 0.6, 1.0, 0.4, 1.3, 1.1, 1.5, 1.4, 1.2, 0.9, 0.3};
  for (int i = 0; i < 14; ++i) {
    ColumnSpec cs;
    cs.ndv = ndvs[i];
    cs.zipf_s = zipf[i];
    cs.correlation = 0.5 + 0.05 * static_cast<double>(i % 8);
    cs.latent = i % 2;
    spec.columns.push_back(cs);
  }
  return GenerateSynthetic(spec);
}

Table KddLike(int64_t rows, int num_columns, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "kdd_like";
  spec.rows = rows;
  spec.seed = seed;
  spec.num_latent = 4;
  spec.latent_cardinality = 300;
  for (int i = 0; i < num_columns; ++i) {
    ColumnSpec cs;
    // NDV cycles through [2, 57] like the KDD Cup 98 profile.
    cs.ndv = 2 + (i * 7) % 56;
    cs.zipf_s = 0.4 + 0.1 * static_cast<double>(i % 12);
    cs.correlation = 0.55 + 0.05 * static_cast<double>(i % 8);
    cs.latent = i % 4;
    spec.columns.push_back(cs);
  }
  return GenerateSynthetic(spec);
}

Table DmvLike(int64_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "dmv_like";
  spec.rows = rows;
  spec.seed = seed;
  spec.num_latent = 3;
  spec.latent_cardinality = 2500;
  // NDV profile modeled on the DMV registration table (2..2774; the largest
  // column is scaled with the row count so small test tables stay dense).
  const int32_t big = static_cast<int32_t>(std::min<int64_t>(2000, std::max<int64_t>(64, rows / 100)));
  const int32_t ndvs[] = {big, 825, 575, 75, 36, 26, 10, 9, 2, 2, 120};
  const double zipf[] = {1.2, 1.4, 1.1, 0.9, 1.3, 0.8, 0.5, 1.0, 0.2, 0.4, 1.1};
  for (int i = 0; i < 11; ++i) {
    ColumnSpec cs;
    cs.ndv = std::min<int32_t>(ndvs[i], static_cast<int32_t>(std::max<int64_t>(2, rows / 4)));
    cs.zipf_s = zipf[i];
    cs.correlation = 0.55 + 0.06 * static_cast<double>(i % 6);
    cs.latent = i % 3;
    spec.columns.push_back(cs);
  }
  return GenerateSynthetic(spec);
}

}  // namespace duet::data
