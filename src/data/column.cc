#include "data/column.h"

#include <algorithm>

#include "common/logging.h"

namespace duet::data {

Column Column::FromValues(std::string name, const std::vector<double>& values) {
  Column col;
  col.name_ = std::move(name);
  std::vector<double> distinct = values;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  col.distinct_ = std::move(distinct);
  col.codes_.resize(values.size());
  for (size_t r = 0; r < values.size(); ++r) {
    const auto it = std::lower_bound(col.distinct_.begin(), col.distinct_.end(), values[r]);
    col.codes_[r] = static_cast<int32_t>(it - col.distinct_.begin());
  }
  return col;
}

Column Column::FromCodes(std::string name, std::vector<int32_t> codes,
                         std::vector<double> distinct) {
  Column col;
  col.name_ = std::move(name);
  for (size_t i = 1; i < distinct.size(); ++i) {
    DUET_CHECK_LT(distinct[i - 1], distinct[i]) << "dictionary must be strictly increasing";
  }
  const int32_t ndv = static_cast<int32_t>(distinct.size());
  for (int32_t c : codes) {
    DUET_CHECK_GE(c, 0);
    DUET_CHECK_LT(c, ndv);
  }
  col.codes_ = std::move(codes);
  col.distinct_ = std::move(distinct);
  return col;
}

int32_t Column::LowerBound(double v) const {
  const auto it = std::lower_bound(distinct_.begin(), distinct_.end(), v);
  return static_cast<int32_t>(it - distinct_.begin());
}

int32_t Column::UpperBound(double v) const {
  const auto it = std::upper_bound(distinct_.begin(), distinct_.end(), v);
  return static_cast<int32_t>(it - distinct_.begin());
}

int32_t Column::CodeOf(double v) const {
  const int32_t lb = LowerBound(v);
  if (lb < ndv() && distinct_[static_cast<size_t>(lb)] == v) return lb;
  return -1;
}

}  // namespace duet::data
