// Synthetic dataset generators standing in for the paper's DMV, Kddcup98 and
// Census tables (offline substitution, see DESIGN.md Sec. 1).
//
// The generator uses a latent-factor model: a handful of hidden Zipf
// variables drive groups of columns, so the tables exhibit the two features
// the paper's experiments stress — skewed marginals and strong cross-column
// correlation — while NDV ranges and row counts mirror the originals
// (scaled for CPU-sized benches; every size is a parameter).
#ifndef DUET_DATA_GENERATOR_H_
#define DUET_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"

namespace duet::data {

/// Per-column generation recipe.
struct ColumnSpec {
  /// Target number of distinct values (observed NDV may be slightly lower).
  int32_t ndv = 2;
  /// Zipf exponent of the independent component (0 = uniform).
  double zipf_s = 1.0;
  /// Probability that a row's value is driven by the latent factor.
  double correlation = 0.5;
  /// Which latent factor drives this column.
  int latent = 0;
};

/// Full synthetic table recipe.
struct SyntheticSpec {
  std::string name;
  int64_t rows = 1000;
  std::vector<ColumnSpec> columns;
  int num_latent = 2;
  int32_t latent_cardinality = 1000;
  double latent_zipf_s = 1.05;
  uint64_t seed = 42;
};

/// Materializes a table from a recipe. Deterministic in `spec.seed`.
Table GenerateSynthetic(const SyntheticSpec& spec);

/// Census-like: ~14 columns, NDV in [2, 123], small table.
Table CensusLike(int64_t rows = 20000, uint64_t seed = 42);

/// Kddcup98-like: high-dimensional (default 100 columns), NDV in [2, 57].
Table KddLike(int64_t rows = 20000, int num_columns = 100, uint64_t seed = 42);

/// DMV-like: 11 columns, mixed NDV up to ~2000, high cardinality.
Table DmvLike(int64_t rows = 200000, uint64_t seed = 42);

}  // namespace duet::data

#endif  // DUET_DATA_GENERATOR_H_
