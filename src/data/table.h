// Table = named collection of equally sized dictionary-encoded columns.
#ifndef DUET_DATA_TABLE_H_
#define DUET_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/column.h"

namespace duet::data {

/// In-memory relation.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Per-column NDVs in column order (model head widths).
  std::vector<int64_t> ColumnNdvs() const;

  /// Index of the column with the most distinct values.
  int LargestNdvColumn() const;

  /// The code of row r in column c (convenience accessor).
  int32_t code(int64_t r, int c) const { return columns_[static_cast<size_t>(c)].code(r); }

 private:
  std::string name_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace duet::data

#endif  // DUET_DATA_TABLE_H_
