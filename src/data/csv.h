// Minimal CSV import/export so users can run the estimators on their own
// tables. Numeric cells parse as doubles; non-numeric cells are dictionary
// encoded by string (their code order is lexicographic, which preserves
// range-predicate semantics over the encoded domain).
#ifndef DUET_DATA_CSV_H_
#define DUET_DATA_CSV_H_

#include <istream>
#include <ostream>
#include <string>

#include "data/table.h"

namespace duet::data {

/// Parses a CSV with a header row. Empty cells become the column minimum.
/// Throws via DUET_CHECK on ragged rows.
Table LoadCsv(std::istream& in, const std::string& table_name);

/// Convenience file overload.
Table LoadCsvFile(const std::string& path, const std::string& table_name);

/// Writes a table (decoded values) as CSV with a header row.
void SaveCsv(const Table& table, std::ostream& out);

}  // namespace duet::data

#endif  // DUET_DATA_CSV_H_
