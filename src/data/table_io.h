// Binary table cache: (de)serialize dictionary-encoded tables.
//
// Re-ingesting a CSV and re-deriving dictionaries on every process start is
// wasteful for the multi-hundred-MB tables the paper targets; a deployed
// estimator ships the encoded table next to the model checkpoint. The
// format carries a magic tag and version like the model checkpoints so
// stale caches fail loudly.
#ifndef DUET_DATA_TABLE_IO_H_
#define DUET_DATA_TABLE_IO_H_

#include <string>

#include "common/serialize.h"
#include "data/table.h"

namespace duet::data {

/// Writes the table (schema, dictionaries, codes) to a stream.
void SaveTable(BinaryWriter& w, const Table& table);

/// Reads a table written by SaveTable.
Table LoadTable(BinaryReader& r);

/// File-level convenience wrappers (abort with a readable message on I/O
/// failure or format mismatch, mirroring core/checkpoint).
void SaveTableFile(const std::string& path, const Table& table);
Table LoadTableFile(const std::string& path);

}  // namespace duet::data

#endif  // DUET_DATA_TABLE_IO_H_
