// Join support (paper Sec. III: "Since Duet shares the framework of Naru,
// it also supports joins just like NeuroCard does, which ... learns from the
// full-out join table to estimate cardinality for join queries").
//
// This reproduction materializes the equi-join of two tables into a flat
// Table; any estimator in the library trained on that table answers join
// queries (predicates over columns of either side) directly, and its
// selectivity multiplied by the join size is the join cardinality.
// NeuroCard's *full outer* join with scale/fanout columns is approximated
// by the inner join plus optional null rows for unmatched tuples — for the
// foreign-key joins the paper's framework targets (every fact row matches
// one dimension row) the two coincide.
#ifndef DUET_DATA_JOIN_H_
#define DUET_DATA_JOIN_H_

#include <string>

#include "data/table.h"

namespace duet::data {

/// Join flavour.
enum class JoinKind {
  kInner,
  /// Left rows without a match are kept, right columns take the value of
  /// their dictionary minimum (a visible "null stand-in"; documented).
  kLeftOuter,
};

/// Materializes `left JOIN right ON left[left_key] == right[right_key]`
/// (value equality, not code equality: the tables keep independent
/// dictionaries). The result's columns are all left columns followed by all
/// right columns except the right key; names are prefixed "l_" / "r_".
/// A join matching nothing returns a valid zero-row table (the source
/// dictionaries are preserved so every column keeps ndv > 0).
Table EquiJoin(const Table& left, int left_key, const Table& right, int right_key,
               const std::string& name, JoinKind kind = JoinKind::kInner);

/// Number of result rows EquiJoin would produce (cheap pre-check).
int64_t EquiJoinSize(const Table& left, int left_key, const Table& right, int right_key,
                     JoinKind kind = JoinKind::kInner);

}  // namespace duet::data

#endif  // DUET_DATA_JOIN_H_
