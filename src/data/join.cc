#include "data/join.h"

#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace duet::data {

namespace {

/// Value -> right-row-indices map over the right key column.
std::unordered_map<double, std::vector<int64_t>> BuildRightIndex(const Table& right,
                                                                 int right_key) {
  std::unordered_map<double, std::vector<int64_t>> index;
  const Column& key = right.column(right_key);
  index.reserve(static_cast<size_t>(key.ndv()));
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    index[key.Value(key.code(r))].push_back(r);
  }
  return index;
}

}  // namespace

int64_t EquiJoinSize(const Table& left, int left_key, const Table& right, int right_key,
                     JoinKind kind) {
  const auto index = BuildRightIndex(right, right_key);
  const Column& key = left.column(left_key);
  int64_t rows = 0;
  for (int64_t r = 0; r < left.num_rows(); ++r) {
    const auto it = index.find(key.Value(key.code(r)));
    if (it != index.end()) {
      rows += static_cast<int64_t>(it->second.size());
    } else if (kind == JoinKind::kLeftOuter) {
      rows += 1;
    }
  }
  return rows;
}

Table EquiJoin(const Table& left, int left_key, const Table& right, int right_key,
               const std::string& name, JoinKind kind) {
  DUET_CHECK_GE(left_key, 0);
  DUET_CHECK_LT(left_key, left.num_columns());
  DUET_CHECK_GE(right_key, 0);
  DUET_CHECK_LT(right_key, right.num_columns());

  const auto index = BuildRightIndex(right, right_key);
  const Column& key = left.column(left_key);

  // Pair list of (left row, right row); right row -1 marks an outer null.
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t r = 0; r < left.num_rows(); ++r) {
    const auto it = index.find(key.Value(key.code(r)));
    if (it != index.end()) {
      for (int64_t rr : it->second) pairs.emplace_back(r, rr);
    } else if (kind == JoinKind::kLeftOuter) {
      pairs.emplace_back(r, -1);
    }
  }
  if (pairs.empty()) {
    // A join matching nothing is a valid zero-row relation, not a
    // programming error — planners and estimators must see the empty
    // intermediate and clamp. FromValues cannot represent an empty
    // dictionary (Table requires ndv > 0 per column), so the result
    // carries the source dictionaries with zero codes.
    std::vector<Column> empty_columns;
    empty_columns.reserve(static_cast<size_t>(left.num_columns() + right.num_columns() - 1));
    for (int c = 0; c < left.num_columns(); ++c) {
      const Column& src = left.column(c);
      empty_columns.push_back(Column::FromCodes("l_" + src.name(), {}, src.distinct()));
    }
    for (int c = 0; c < right.num_columns(); ++c) {
      if (c == right_key) continue;
      const Column& src = right.column(c);
      empty_columns.push_back(Column::FromCodes("r_" + src.name(), {}, src.distinct()));
    }
    return Table(name, std::move(empty_columns));
  }

  std::vector<Column> columns;
  columns.reserve(static_cast<size_t>(left.num_columns() + right.num_columns() - 1));
  for (int c = 0; c < left.num_columns(); ++c) {
    const Column& src = left.column(c);
    std::vector<double> values;
    values.reserve(pairs.size());
    for (const auto& [lr, rr] : pairs) values.push_back(src.Value(src.code(lr)));
    columns.push_back(Column::FromValues("l_" + src.name(), values));
  }
  for (int c = 0; c < right.num_columns(); ++c) {
    if (c == right_key) continue;  // the key already appears as l_<key>
    const Column& src = right.column(c);
    const double null_stand_in = src.Value(0);
    std::vector<double> values;
    values.reserve(pairs.size());
    for (const auto& [lr, rr] : pairs) {
      values.push_back(rr >= 0 ? src.Value(src.code(rr)) : null_stand_in);
    }
    columns.push_back(Column::FromValues("r_" + src.name(), values));
  }
  return Table(name, std::move(columns));
}

}  // namespace duet::data
