// Dictionary-encoded column storage.
//
// Every column is encoded against its sorted distinct-value dictionary, so
// a predicate on raw values maps to a contiguous code interval. All learned
// estimators in the paper (Naru, UAE, Duet) operate in this code space: one
// categorical distribution per column with NDV states.
#ifndef DUET_DATA_COLUMN_H_
#define DUET_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace duet::data {

/// A single dictionary-encoded column.
class Column {
 public:
  Column() = default;

  /// Builds from raw values: computes the sorted distinct dictionary and
  /// encodes every row as an index into it.
  static Column FromValues(std::string name, const std::vector<double>& values);

  /// Builds directly from codes + dictionary (used by generators that already
  /// produce code space). `distinct` must be strictly increasing.
  static Column FromCodes(std::string name, std::vector<int32_t> codes,
                          std::vector<double> distinct);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return static_cast<int64_t>(codes_.size()); }

  /// Number of distinct values (paper: NDV / d_i).
  int32_t ndv() const { return static_cast<int32_t>(distinct_.size()); }

  /// Code of row r.
  int32_t code(int64_t r) const { return codes_[static_cast<size_t>(r)]; }
  const std::vector<int32_t>& codes() const { return codes_; }

  /// The raw value for a code.
  double Value(int32_t code) const { return distinct_[static_cast<size_t>(code)]; }
  const std::vector<double>& distinct() const { return distinct_; }

  /// Smallest code whose value is >= v (== ndv() if none).
  int32_t LowerBound(double v) const;
  /// Smallest code whose value is > v (== ndv() if none).
  int32_t UpperBound(double v) const;
  /// Code of v if v is in the dictionary, -1 otherwise.
  int32_t CodeOf(double v) const;

 private:
  std::string name_;
  std::vector<int32_t> codes_;
  std::vector<double> distinct_;
};

}  // namespace duet::data

#endif  // DUET_DATA_COLUMN_H_
