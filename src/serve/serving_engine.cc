#include "serve/serving_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/model_zoo.h"
#include "serve/update_worker.h"

namespace duet::serve {

using Clock = std::chrono::steady_clock;

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// One submitted query plus its result slot. The mutex/cv pair is per-query
/// so a Future wait never contends with unrelated traffic.
struct ServingEngine::Pending {
  query::Query query;
  /// Zoo mode: which model serves this query (empty in fixed/registry
  /// mode). The scheduler groups a micro-batch by key at dispatch.
  std::string model_key;
  Clock::time_point enqueued;
  /// Absolute expiry; time_point::max() = no deadline. The scheduler drops
  /// expired entries before dispatch.
  Clock::time_point deadline = Clock::time_point::max();

  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Estimate result;
  /// SubmitWithCallback completion hook; empty for Future-style submits.
  /// Invoked exactly once, after the result is published (a Future waiter
  /// racing the callback observes a ready result either way).
  std::function<void(const Estimate&)> on_complete;

  void Fulfill(const Estimate& value) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = value;
      ready = true;
    }
    cv.notify_all();
    if (on_complete) on_complete(value);
  }
};

bool ServingEngine::Future::Ready() const {
  DUET_CHECK(state_ != nullptr) << "Ready() on an empty Future";
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ready;
}

double ServingEngine::Future::Wait() const { return Result().selectivity; }

Estimate ServingEngine::Future::Result() const {
  DUET_CHECK(state_ != nullptr) << "Wait() on an empty Future";
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->ready; });
  return state_->result;
}

ServingEngine::ServingEngine(query::CardinalityEstimator& estimator, ServingOptions options)
    : fixed_estimator_(&estimator), options_(options), pool_(options.num_workers) {
  DUET_CHECK_GE(options_.min_shard, 1);
  DUET_CHECK_GE(options_.max_batch, 1);
  DUET_CHECK_GE(options_.max_wait_us, 0);
  DUET_CHECK_GE(options_.max_queue, 0);
  DUET_CHECK_GE(options_.default_deadline_us, 0);
  DUET_CHECK_GE(options_.breaker_threshold, 1);
  DUET_CHECK_GE(options_.breaker_cooldown_us, 0);
  // Applied before any worker can estimate: layers repack (and plans
  // recompile) lazily on their first forward under the new configuration.
  estimator.SetInferenceBackend(options_.backend);
  estimator.SetPlanEnabled(options_.compile_plans);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

ServingEngine::ServingEngine(ModelRegistry& registry, ServingOptions options)
    : registry_(&registry), options_(options), pool_(options.num_workers) {
  DUET_CHECK_GE(options_.min_shard, 1);
  DUET_CHECK_GE(options_.max_batch, 1);
  DUET_CHECK_GE(options_.max_wait_us, 0);
  DUET_CHECK_GE(options_.max_queue, 0);
  DUET_CHECK_GE(options_.default_deadline_us, 0);
  DUET_CHECK_GE(options_.breaker_threshold, 1);
  DUET_CHECK_GE(options_.breaker_cooldown_us, 0);
  // No backend/plan application here: snapshots arrive configured and
  // frozen by the registry (RegistryOptions), and reconfiguring a frozen
  // snapshot is not the engine's call to make.
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

ServingEngine::ServingEngine(ModelZoo& zoo, ServingOptions options)
    : zoo_(&zoo), options_(options), pool_(options.num_workers) {
  DUET_CHECK_GE(options_.min_shard, 1);
  DUET_CHECK_GE(options_.max_batch, 1);
  DUET_CHECK_GE(options_.max_wait_us, 0);
  DUET_CHECK_GE(options_.max_queue, 0);
  DUET_CHECK_GE(options_.default_deadline_us, 0);
  DUET_CHECK_GE(options_.breaker_threshold, 1);
  DUET_CHECK_GE(options_.breaker_cooldown_us, 0);
  // Like registry mode: artifacts arrive frozen at write time, so the
  // engine never applies backend/plan configuration.
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

ServingEngine::~ServingEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  scheduler_.join();  // drains every pending query before returning
}

ServingEngine::Target ServingEngine::Resolve() const {
  if (zoo_ != nullptr) return Target{};  // keyed dispatches use ResolveKey
  if (registry_ == nullptr) {
    Target target;
    target.estimator = fixed_estimator_;
    return target;
  }
  // The hot-swap read: one acquire-load of the current snapshot. The
  // returned pin keeps the snapshot alive for the whole dispatch, so a
  // concurrent publish retires the old model only after this batch is done.
  Target target;
  target.pin = registry_->Current();
  target.estimator = &target.pin->estimator();
  target.snapshot_id = target.pin->id();
  return target;
}

ServingEngine::Target ServingEngine::ResolveKey(const std::string& model_key) const {
  DUET_CHECK(zoo_ != nullptr) << "keyed dispatch on a non-zoo engine";
  Target target;
  ZooPin pin;
  const artifact::ArtifactStatus st = zoo_->TryAcquire(model_key, &pin);
  if (!st.ok) return target;  // empty target: the dispatch degrades to fallback
  target.zoo_pin = std::move(pin);
  target.estimator = &target.zoo_pin->estimator();
  target.snapshot_id = target.zoo_pin->fingerprint();
  return target;
}

void ServingEngine::NoteDispatch(const Target& target) {
  if (target.snapshot_id == 0) return;
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (stats_.snapshot_id != 0 && stats_.snapshot_id != target.snapshot_id) {
    ++stats_.snapshot_swaps;
  }
  stats_.snapshot_id = target.snapshot_id;
}

int64_t ServingEngine::EstimateSharded(const Target& target,
                                       const std::vector<query::Query>& queries,
                                       double* out, bool* degraded) {
  const int64_t n = static_cast<int64_t>(queries.size());
  if (n == 0) return 0;
  query::CardinalityEstimator& estimator = *target.estimator;
  // Shards split on query boundaries; per-row results are batch-size
  // invariant (kernel invariant + per-query deterministic sampling seeds),
  // so any split yields bitwise the single-thread batch result. All shards
  // run on the one estimator `target` resolved — a mid-batch snapshot
  // publish cannot split a batch across models.
  const int64_t by_floor = std::max<int64_t>(1, n / options_.min_shard);
  const int64_t num_shards =
      std::min<int64_t>(static_cast<int64_t>(pool_.num_threads()), by_floor);
  // Ranges whose neural estimate threw; answered by the fallback after the
  // batch drains. The exception itself is intentionally not preserved: a
  // degraded answer, not an error, is the contract (docs/resilience.md §2).
  std::vector<std::pair<int64_t, int64_t>> failed;
  if (num_shards <= 1) {
    try {
      FaultInjector::MaybeThrow(FaultPoint::kNeuralForward,
                                "injected neural forward failure");
      const std::vector<double> sels = estimator.EstimateSelectivityBatch(queries);
      std::copy(sels.begin(), sels.end(), out);
    } catch (...) {
      failed.emplace_back(0, n);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shards;
      stats_.neural_failures += static_cast<uint64_t>(failed.size());
    }
    for (const auto& [lo, len] : failed) {
      ServeFallback(queries, lo, len, out);
      if (degraded != nullptr) std::fill(degraded + lo, degraded + lo + len, true);
    }
    return static_cast<int64_t>(failed.size());
  }

  // Per-call completion latch (NOT pool_.Wait(): that is a pool-wide
  // barrier, and concurrent client calls must not observe each other).
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int64_t remaining;
  } latch{{}, {}, num_shards};

  const int64_t base = n / num_shards;
  const int64_t extra = n % num_shards;  // first `extra` shards get +1
  int64_t begin = 0;
  for (int64_t s = 0; s < num_shards; ++s) {
    const int64_t len = base + (s < extra ? 1 : 0);
    const int64_t lo = begin;
    begin += len;
    pool_.Submit([&estimator, &queries, &latch, &failed, out, lo, len] {
      // The catch is the resilience layer's load-bearing wall: a neural
      // failure (injected or real) must never unwind a pool worker or skip
      // the latch decrement below — it becomes a fallback-served range.
      bool ok = true;
      try {
        FaultInjector::MaybeThrow(FaultPoint::kNeuralForward,
                                  "injected neural forward failure");
        const std::vector<query::Query> shard(queries.begin() + lo,
                                              queries.begin() + lo + len);
        const std::vector<double> sels = estimator.EstimateSelectivityBatch(shard);
        std::copy(sels.begin(), sels.end(), out + lo);
      } catch (...) {
        ok = false;
      }
      // Notify while holding the mutex: the waiter owns the stack-allocated
      // latch and may destroy it the moment it can observe remaining == 0,
      // which it cannot do until this unlock. `failed` shares the latch's
      // lifetime and lock.
      std::lock_guard<std::mutex> lock(latch.mu);
      if (!ok) failed.emplace_back(lo, len);
      --latch.remaining;
      latch.cv.notify_one();
    });
  }
  DUET_CHECK_EQ(begin, n);
  {
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.shards += static_cast<uint64_t>(num_shards);
    stats_.neural_failures += static_cast<uint64_t>(failed.size());
  }
  // Fallback fills run on the dispatching thread, after every shard task
  // has released the latch (no worker touches `failed` anymore).
  for (const auto& [lo, len] : failed) {
    ServeFallback(queries, lo, len, out);
    if (degraded != nullptr) std::fill(degraded + lo, degraded + lo + len, true);
  }
  return static_cast<int64_t>(failed.size());
}

void ServingEngine::ServeFallback(const std::vector<query::Query>& queries, int64_t lo,
                                  int64_t len, double* out) {
  query::CardinalityEstimator* fb = fallback_.load(std::memory_order_acquire);
  bool answered = false;
  if (fb != nullptr) {
    try {
      const std::vector<query::Query> range(queries.begin() + lo,
                                            queries.begin() + lo + len);
      const std::vector<double> sels = fb->EstimateSelectivityBatch(range);
      std::copy(sels.begin(), sels.end(), out + lo);
      answered = true;
    } catch (...) {
      // Even the fallback failed: fall through to the constant answer.
    }
  }
  if (!answered) std::fill(out + lo, out + lo + len, 0.0);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.fallback_served += static_cast<uint64_t>(len);
}

bool ServingEngine::AllowNeural() {
  int state = breaker_state_.load(std::memory_order_acquire);
  if (state == 0) return true;
  if (state == 1) {
    if (NowMicros() >= breaker_open_until_us_.load(std::memory_order_relaxed)) {
      // Cooldown elapsed: CAS elects exactly one dispatch as the half-open
      // probe; everyone else keeps serving fallback until it reports back.
      int expected = 1;
      if (breaker_state_.compare_exchange_strong(expected, 2,
                                                 std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }
  return false;  // half-open: another dispatch is probing
}

void ServingEngine::RecordNeuralOutcome(bool failed) {
  if (!failed) {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    // A successful probe closes the breaker; a plain success under closed
    // state is a no-op CAS.
    int expected = 2;
    breaker_state_.compare_exchange_strong(expected, 0, std::memory_order_acq_rel);
    return;
  }
  const int64_t fails = consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int state = breaker_state_.load(std::memory_order_acquire);
  const bool probe_failed = state == 2;
  const bool threshold_hit = state == 0 && fails >= options_.breaker_threshold;
  if (probe_failed || threshold_hit) {
    breaker_open_until_us_.store(NowMicros() + options_.breaker_cooldown_us,
                                 std::memory_order_relaxed);
    breaker_state_.store(1, std::memory_order_release);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.breaker_trips;
  }
}

void ServingEngine::ServeBatch(const Target& target,
                               const std::vector<query::Query>& queries, double* out,
                               bool* degraded) {
  const int64_t n = static_cast<int64_t>(queries.size());
  if (n == 0) return;
  if (target.estimator == nullptr) {
    // Zoo mode with a key whose artifact failed to load (or was never
    // registered): the whole dispatch degrades to the fallback, flagged.
    // Not a neural failure — the breaker only judges the neural path.
    ServeFallback(queries, 0, n, out);
    if (degraded != nullptr) std::fill(degraded, degraded + n, true);
    return;
  }
  if (!AllowNeural()) {
    // Breaker open: the whole dispatch degrades to the fallback without
    // touching the neural path.
    ServeFallback(queries, 0, n, out);
    if (degraded != nullptr) std::fill(degraded, degraded + n, true);
    return;
  }
  const int64_t failed_shards = EstimateSharded(target, queries, out, degraded);
  RecordNeuralOutcome(failed_shards > 0);
}

std::vector<double> ServingEngine::EstimateBatch(const std::vector<query::Query>& queries,
                                                 uint64_t* snapshot_id) {
  const std::vector<Estimate> results = EstimateBatchEx(queries, 0, snapshot_id);
  std::vector<double> sels(results.size());
  for (size_t i = 0; i < results.size(); ++i) sels[i] = results[i].selectivity;
  return sels;
}

std::vector<double> ServingEngine::EstimateBatch(const std::string& model_key,
                                                 const std::vector<query::Query>& queries,
                                                 uint64_t* snapshot_id) {
  const std::vector<Estimate> results = EstimateBatchEx(model_key, queries, 0, snapshot_id);
  std::vector<double> sels(results.size());
  for (size_t i = 0; i < results.size(); ++i) sels[i] = results[i].selectivity;
  return sels;
}

std::vector<Estimate> ServingEngine::EstimateBatchEx(
    const std::vector<query::Query>& queries, int64_t deadline_us,
    uint64_t* snapshot_id) {
  DUET_CHECK(zoo_ == nullptr) << "zoo-mode engine requires a model key";
  return EstimateBatchImpl(nullptr, queries, deadline_us, snapshot_id);
}

std::vector<Estimate> ServingEngine::EstimateBatchEx(
    const std::string& model_key, const std::vector<query::Query>& queries,
    int64_t deadline_us, uint64_t* snapshot_id) {
  DUET_CHECK(zoo_ != nullptr) << "keyed EstimateBatchEx on a non-zoo engine";
  return EstimateBatchImpl(&model_key, queries, deadline_us, snapshot_id);
}

std::vector<Estimate> ServingEngine::EstimateBatchImpl(
    const std::string* model_key, const std::vector<query::Query>& queries,
    int64_t deadline_us, uint64_t* snapshot_id) {
  const Clock::time_point start = Clock::now();
  // Resolved once per client call: the pin in `target` holds the snapshot
  // (or the pinned zoo model) until this batch returns, however many
  // publishes or evictions happen meanwhile.
  const Target target = model_key != nullptr ? ResolveKey(*model_key) : Resolve();
  NoteDispatch(target);
  if (snapshot_id != nullptr) *snapshot_id = target.snapshot_id;
  std::vector<double> sels(queries.size());
  std::vector<uint8_t> degraded(queries.size(), 0);
  // bool* view over the flag bytes: std::vector<bool> has no data().
  static_assert(sizeof(bool) == 1, "degraded flags alias uint8_t storage");
  ServeBatch(target, queries, sels.data(), reinterpret_cast<bool*>(degraded.data()));
  if (target.zoo_pin != nullptr) {
    target.zoo_pin->NoteServed(static_cast<uint64_t>(queries.size()));
  }
  // The sync path runs on the caller's thread, so the batch was attempted
  // regardless of the budget; what a deadline buys here is *late-result
  // detection* — answers that arrived after the caller's budget are flagged
  // (the async path, which has a queue to drop from, sheds pre-dispatch).
  const bool late =
      deadline_us > 0 &&
      Clock::now() - start > std::chrono::microseconds(deadline_us);
  std::vector<Estimate> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results[i].selectivity = sels[i];
    results[i].fallback = degraded[i] != 0;
    results[i].deadline_expired = late;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.sync_batches;
  stats_.queries += static_cast<uint64_t>(queries.size());
  if (late) stats_.deadline_missed += static_cast<uint64_t>(queries.size());
  return results;
}

ServingEngine::Future ServingEngine::Submit(query::Query query, int64_t deadline_us) {
  DUET_CHECK(zoo_ == nullptr) << "zoo-mode engine requires a model key";
  return SubmitImpl(std::string(), std::move(query), deadline_us, nullptr);
}

ServingEngine::Future ServingEngine::Submit(const std::string& model_key, query::Query query,
                                            int64_t deadline_us) {
  DUET_CHECK(zoo_ != nullptr) << "keyed Submit on a non-zoo engine";
  return SubmitImpl(model_key, std::move(query), deadline_us, nullptr);
}

void ServingEngine::SubmitWithCallback(query::Query query, int64_t deadline_us,
                                       std::function<void(const Estimate&)> done) {
  DUET_CHECK(zoo_ == nullptr) << "zoo-mode engine requires a model key";
  SubmitImpl(std::string(), std::move(query), deadline_us, std::move(done));
}

void ServingEngine::SubmitWithCallback(const std::string& model_key, query::Query query,
                                       int64_t deadline_us,
                                       std::function<void(const Estimate&)> done) {
  DUET_CHECK(zoo_ != nullptr) << "keyed SubmitWithCallback on a non-zoo engine";
  SubmitImpl(model_key, std::move(query), deadline_us, std::move(done));
}

std::vector<Estimate> ServingEngine::ShedBatch(const std::vector<query::Query>& queries) {
  const int64_t n = static_cast<int64_t>(queries.size());
  std::vector<Estimate> results(queries.size());
  if (n == 0) return results;
  std::vector<double> sels(queries.size(), 0.0);
  ServeFallback(queries, 0, n, sels.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    results[i].selectivity = sels[i];
    results[i].fallback = true;
    results[i].shed = true;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.shed += static_cast<uint64_t>(n);
  stats_.queries += static_cast<uint64_t>(n);
  return results;
}

ServingEngine::Future ServingEngine::SubmitImpl(std::string model_key, query::Query query,
                                                int64_t deadline_us,
                                                std::function<void(const Estimate&)> done) {
  auto state = std::make_shared<Pending>();
  state->query = std::move(query);
  state->model_key = std::move(model_key);
  state->on_complete = std::move(done);
  state->enqueued = Clock::now();
  if (deadline_us <= 0) deadline_us = options_.default_deadline_us;
  if (deadline_us > 0) {
    state->deadline = state->enqueued + std::chrono::microseconds(deadline_us);
  }
  bool admitted = true;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    DUET_CHECK(!stop_) << "Submit() after engine shutdown";
    if (options_.max_queue > 0 &&
        static_cast<int64_t>(pending_.size()) >= options_.max_queue) {
      // Admission control: reject fast rather than queue beyond the bound
      // (an unbounded queue under overload grows latency without limit and
      // the caller would have timed out anyway — docs/resilience.md §2).
      admitted = false;
    } else {
      pending_.push_back(state);
      // Lock order queue_mu_ -> stats_mu_ (stats() and the dispatch path
      // never nest them the other way around).
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.queue_high_water =
          std::max(stats_.queue_high_water, static_cast<int64_t>(pending_.size()));
    }
  }
  if (!admitted) {
    // Shed: answer immediately from the fallback on the caller's thread.
    // Cheap by construction (the fallback is a classical estimator), and
    // the Future is ready before Submit returns — never a blocked caller.
    double sel = 0.0;
    ServeFallback({state->query}, 0, 1, &sel);
    Estimate e;
    e.selectivity = sel;
    e.fallback = true;
    e.shed = true;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
      ++stats_.queries;
    }
    state->Fulfill(e);
    return Future(state);
  }
  queue_cv_.notify_one();
  return Future(state);
}

void ServingEngine::ReportObserved(const query::Query& query, double true_cardinality) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.feedback_reported;
  }
  UpdateWorker* worker = feedback_.load(std::memory_order_acquire);
  if (worker != nullptr) {
    worker->AddFeedback(query, true_cardinality);
    return;
  }
  // No worker attached: offer the pair to the estimator's own hook (a
  // no-op for the in-tree estimators unless they override it). Zoo mode
  // has no single serving model to offer it to — the counter above is the
  // only effect until a worker is attached.
  const Target target = Resolve();
  if (target.estimator != nullptr) {
    target.estimator->ObserveTrueCardinality(query, true_cardinality);
  }
}

void ServingEngine::AttachUpdateWorker(UpdateWorker* worker) {
  feedback_.store(worker, std::memory_order_release);
}

void ServingEngine::AttachFallback(query::CardinalityEstimator* fallback) {
  fallback_.store(fallback, std::memory_order_release);
}

void ServingEngine::SchedulerLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Collect: dispatch when max_batch queries are pending, the oldest has
    // aged out, or the engine is shutting down (drain everything then).
    const auto deadline = pending_.front()->enqueued + max_wait;
    while (!stop_ && static_cast<int64_t>(pending_.size()) < options_.max_batch) {
      if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    std::vector<std::shared_ptr<Pending>> batch;
    const size_t take =
        std::min(pending_.size(), static_cast<size_t>(options_.max_batch));
    batch.assign(pending_.begin(), pending_.begin() + static_cast<int64_t>(take));
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<int64_t>(take));
    lock.unlock();
    DispatchMicroBatch(std::move(batch));
    lock.lock();
  }
}

void ServingEngine::DispatchMicroBatch(std::vector<std::shared_ptr<Pending>> batch) {
  // Drop expired work before dispatch: a query past its deadline gets a
  // flagged fallback answer instead of a slot in the neural batch (the
  // caller has moved on; burning model time on it only delays the rest).
  const Clock::time_point now = Clock::now();
  std::vector<std::shared_ptr<Pending>> admitted;
  std::vector<std::shared_ptr<Pending>> expired;
  admitted.reserve(batch.size());
  for (auto& p : batch) {
    (p->deadline < now ? expired : admitted).push_back(std::move(p));
  }

  std::vector<double> expired_sels(expired.size(), 0.0);
  if (!expired.empty()) {
    std::vector<query::Query> expired_queries;
    expired_queries.reserve(expired.size());
    for (const auto& p : expired) expired_queries.push_back(p->query);
    ServeFallback(expired_queries, 0, static_cast<int64_t>(expired.size()),
                  expired_sels.data());
  }

  std::vector<double> sels(admitted.size());
  std::vector<uint8_t> degraded(admitted.size(), 0);
  // Fused dispatch-group sizes (>= 2) formed below; folded into the stats
  // under stats_mu_ after the batch completes.
  std::vector<int64_t> fused_sizes;
  if (!admitted.empty()) {
    // Cross-request fusion: group by model key (fixed/registry mode: every
    // key is empty, so this is one group) and serve each group as ONE
    // batched estimate — a GEMM over the stacked feature rows instead of N
    // independent batch-1 GEMVs. Each group is served end-to-end by one
    // resolved target — one snapshot or one pinned zoo model, never a
    // mid-group mix. Grouping preserves submission order within each group,
    // and kernel batch invariance makes every per-query result bitwise what
    // a batch-1 dispatch would produce — so fusion (and the unfused A/B arm
    // below) changes throughput, never answers.
    std::vector<size_t> order(admitted.size());
    for (size_t i = 0; i < admitted.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return admitted[a]->model_key < admitted[b]->model_key;
    });
    size_t g = 0;
    while (g < order.size()) {
      size_t end = g + 1;
      // fuse_requests off: the unfused arm — every query dispatches alone
      // (its own resolve + batch-1 estimate), for fusion A/B benchmarks.
      while (options_.fuse_requests && end < order.size() &&
             admitted[order[end]]->model_key == admitted[order[g]]->model_key) {
        ++end;
      }
      if (end - g >= 2) fused_sizes.push_back(static_cast<int64_t>(end - g));
      std::vector<query::Query> queries;
      queries.reserve(end - g);
      for (size_t i = g; i < end; ++i) queries.push_back(admitted[order[i]]->query);
      const std::string& key = admitted[order[g]]->model_key;
      const Target target = zoo_ != nullptr ? ResolveKey(key) : Resolve();
      NoteDispatch(target);
      std::vector<double> group_sels(queries.size());
      std::vector<uint8_t> group_degraded(queries.size(), 0);
      ServeBatch(target, queries, group_sels.data(),
                 reinterpret_cast<bool*>(group_degraded.data()));
      if (target.zoo_pin != nullptr) {
        target.zoo_pin->NoteServed(static_cast<uint64_t>(queries.size()));
      }
      for (size_t i = g; i < end; ++i) {
        sels[order[i]] = group_sels[i - g];
        degraded[order[i]] = group_degraded[i - g];
      }
      g = end;
    }
  }

  // Count before fulfilling: a client that has observed every Future ready
  // must also observe the counters covering those queries.
  {
    const Clock::time_point done = Clock::now();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.micro_batches;
    stats_.queries += static_cast<uint64_t>(batch.size());
    stats_.deadline_missed += static_cast<uint64_t>(expired.size());
    stats_.largest_micro_batch =
        std::max(stats_.largest_micro_batch, static_cast<int64_t>(admitted.size()));
    for (const int64_t sz : fused_sizes) {
      stats_.fused_requests += static_cast<uint64_t>(sz);
      ++fusion_size_counts_[sz];
      ++fusion_group_count_;
    }
    for (const auto& p : admitted) {
      RecordLatencyLocked(std::chrono::duration_cast<std::chrono::microseconds>(
                              done - p->enqueued)
                              .count());
    }
  }
  for (size_t i = 0; i < expired.size(); ++i) {
    Estimate e;
    e.selectivity = expired_sels[i];
    e.fallback = true;
    e.deadline_expired = true;
    expired[i]->Fulfill(e);
  }
  for (size_t i = 0; i < admitted.size(); ++i) {
    Estimate e;
    e.selectivity = sels[i];
    e.fallback = degraded[i] != 0;
    admitted[i]->Fulfill(e);
  }
}

void ServingEngine::RecordLatencyLocked(int64_t micros) {
  if (micros < 0) micros = 0;
  size_t bucket = 0;
  while (bucket + 1 < latency_buckets_.size() && (micros >> bucket) > 0) ++bucket;
  ++latency_buckets_[bucket];
  ++latency_count_;
}

namespace {

/// Upper bound of the histogram bucket containing quantile `q` (in [0, 1]).
double BucketQuantile(const std::array<uint64_t, 40>& buckets, uint64_t count,
                      double q) {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += static_cast<double>(buckets[b]);
    if (seen >= target) return static_cast<double>(1LL << b);
  }
  return static_cast<double>(1LL << (buckets.size() - 1));
}

}  // namespace

ServingStats ServingEngine::stats() const {
  int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = static_cast<int64_t>(pending_.size());
  }
  ServingStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
    snapshot.latency_p50_us = BucketQuantile(latency_buckets_, latency_count_, 0.50);
    snapshot.latency_p99_us = BucketQuantile(latency_buckets_, latency_count_, 0.99);
    snapshot.latency_p999_us = BucketQuantile(latency_buckets_, latency_count_, 0.999);
    if (fusion_group_count_ > 0) {
      // Exact median over fused-group sizes (the histogram is keyed by
      // size, so a linear walk is a handful of entries at most).
      const uint64_t target = (fusion_group_count_ + 1) / 2;
      uint64_t seen = 0;
      for (const auto& [size, count] : fusion_size_counts_) {
        seen += count;
        if (seen >= target) {
          snapshot.fusion_batch_p50 = static_cast<double>(size);
          break;
        }
      }
    }
  }
  snapshot.queue_depth = depth;
  snapshot.breaker_state =
      static_cast<uint64_t>(breaker_state_.load(std::memory_order_acquire));
  // Point-in-time gauges, not counters: read from the serving model outside
  // stats_mu_ (the caches and plan telemetry have their own locks/atomics).
  // In registry mode this resolves the current snapshot, so the gauges
  // describe what new dispatches would serve on. Zoo mode has no single
  // serving model — per-model gauges live in ModelZoo::ModelStats — so the
  // model gauges stay 0 there.
  const Target target = Resolve();
  if (target.estimator != nullptr) {
    snapshot.packed_weight_bytes = target.estimator->PackedWeightBytes();
    snapshot.plan_bytes = target.estimator->PlanBytes();
    snapshot.plan_compile_micros = target.estimator->PlanCompileMicros();
    snapshot.plan_cache_hits = target.estimator->PlanCacheHits();
  }
  return snapshot;
}

}  // namespace duet::serve
