#include "serve/serving_engine.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "serve/model_registry.h"
#include "serve/update_worker.h"

namespace duet::serve {

using Clock = std::chrono::steady_clock;

/// One submitted query plus its result slot. The mutex/cv pair is per-query
/// so a Future wait never contends with unrelated traffic.
struct ServingEngine::Pending {
  query::Query query;
  Clock::time_point enqueued;

  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  double selectivity = 0.0;

  void Fulfill(double value) {
    {
      std::lock_guard<std::mutex> lock(mu);
      selectivity = value;
      ready = true;
    }
    cv.notify_all();
  }
};

bool ServingEngine::Future::Ready() const {
  DUET_CHECK(state_ != nullptr) << "Ready() on an empty Future";
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ready;
}

double ServingEngine::Future::Wait() const {
  DUET_CHECK(state_ != nullptr) << "Wait() on an empty Future";
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->ready; });
  return state_->selectivity;
}

ServingEngine::ServingEngine(query::CardinalityEstimator& estimator, ServingOptions options)
    : fixed_estimator_(&estimator), options_(options), pool_(options.num_workers) {
  DUET_CHECK_GE(options_.min_shard, 1);
  DUET_CHECK_GE(options_.max_batch, 1);
  DUET_CHECK_GE(options_.max_wait_us, 0);
  // Applied before any worker can estimate: layers repack (and plans
  // recompile) lazily on their first forward under the new configuration.
  estimator.SetInferenceBackend(options_.backend);
  estimator.SetPlanEnabled(options_.compile_plans);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

ServingEngine::ServingEngine(ModelRegistry& registry, ServingOptions options)
    : registry_(&registry), options_(options), pool_(options.num_workers) {
  DUET_CHECK_GE(options_.min_shard, 1);
  DUET_CHECK_GE(options_.max_batch, 1);
  DUET_CHECK_GE(options_.max_wait_us, 0);
  // No backend/plan application here: snapshots arrive configured and
  // frozen by the registry (RegistryOptions), and reconfiguring a frozen
  // snapshot is not the engine's call to make.
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

ServingEngine::~ServingEngine() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  scheduler_.join();  // drains every pending query before returning
}

ServingEngine::Target ServingEngine::Resolve() const {
  if (registry_ == nullptr) return Target{fixed_estimator_, nullptr, 0};
  // The hot-swap read: one acquire-load of the current snapshot. The
  // returned pin keeps the snapshot alive for the whole dispatch, so a
  // concurrent publish retires the old model only after this batch is done.
  Target target;
  target.pin = registry_->Current();
  target.estimator = &target.pin->estimator();
  target.snapshot_id = target.pin->id();
  return target;
}

void ServingEngine::NoteDispatch(const Target& target) {
  if (target.snapshot_id == 0) return;
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (stats_.snapshot_id != 0 && stats_.snapshot_id != target.snapshot_id) {
    ++stats_.snapshot_swaps;
  }
  stats_.snapshot_id = target.snapshot_id;
}

void ServingEngine::EstimateSharded(const Target& target,
                                    const std::vector<query::Query>& queries, double* out) {
  const int64_t n = static_cast<int64_t>(queries.size());
  if (n == 0) return;
  query::CardinalityEstimator& estimator = *target.estimator;
  // Shards split on query boundaries; per-row results are batch-size
  // invariant (kernel invariant + per-query deterministic sampling seeds),
  // so any split yields bitwise the single-thread batch result. All shards
  // run on the one estimator `target` resolved — a mid-batch snapshot
  // publish cannot split a batch across models.
  const int64_t by_floor = std::max<int64_t>(1, n / options_.min_shard);
  const int64_t num_shards =
      std::min<int64_t>(static_cast<int64_t>(pool_.num_threads()), by_floor);
  if (num_shards <= 1) {
    const std::vector<double> sels = estimator.EstimateSelectivityBatch(queries);
    std::copy(sels.begin(), sels.end(), out);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shards;
    return;
  }

  // Per-call completion latch (NOT pool_.Wait(): that is a pool-wide
  // barrier, and concurrent client calls must not observe each other).
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int64_t remaining;
  } latch{{}, {}, num_shards};

  const int64_t base = n / num_shards;
  const int64_t extra = n % num_shards;  // first `extra` shards get +1
  int64_t begin = 0;
  for (int64_t s = 0; s < num_shards; ++s) {
    const int64_t len = base + (s < extra ? 1 : 0);
    const int64_t lo = begin;
    begin += len;
    pool_.Submit([&estimator, &queries, &latch, out, lo, len] {
      const std::vector<query::Query> shard(queries.begin() + lo,
                                            queries.begin() + lo + len);
      const std::vector<double> sels = estimator.EstimateSelectivityBatch(shard);
      std::copy(sels.begin(), sels.end(), out + lo);
      // Notify while holding the mutex: the waiter owns the stack-allocated
      // latch and may destroy it the moment it can observe remaining == 0,
      // which it cannot do until this unlock.
      std::lock_guard<std::mutex> lock(latch.mu);
      --latch.remaining;
      latch.cv.notify_one();
    });
  }
  DUET_CHECK_EQ(begin, n);
  {
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.shards += static_cast<uint64_t>(num_shards);
}

std::vector<double> ServingEngine::EstimateBatch(const std::vector<query::Query>& queries,
                                                 uint64_t* snapshot_id) {
  // Resolved once per client call: the pin in `target` holds the snapshot
  // until this batch returns, however many publishes happen meanwhile.
  const Target target = Resolve();
  NoteDispatch(target);
  if (snapshot_id != nullptr) *snapshot_id = target.snapshot_id;
  std::vector<double> sels(queries.size());
  EstimateSharded(target, queries, sels.data());
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.sync_batches;
  stats_.queries += static_cast<uint64_t>(queries.size());
  return sels;
}

ServingEngine::Future ServingEngine::Submit(query::Query query) {
  auto state = std::make_shared<Pending>();
  state->query = std::move(query);
  state->enqueued = Clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    DUET_CHECK(!stop_) << "Submit() after engine shutdown";
    pending_.push_back(state);
  }
  queue_cv_.notify_one();
  return Future(state);
}

void ServingEngine::ReportObserved(const query::Query& query, double true_cardinality) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.feedback_reported;
  }
  UpdateWorker* worker = feedback_.load(std::memory_order_acquire);
  if (worker != nullptr) {
    worker->AddFeedback(query, true_cardinality);
    return;
  }
  // No worker attached: offer the pair to the estimator's own hook (a
  // no-op for the in-tree estimators unless they override it).
  const Target target = Resolve();
  target.estimator->ObserveTrueCardinality(query, true_cardinality);
}

void ServingEngine::AttachUpdateWorker(UpdateWorker* worker) {
  feedback_.store(worker, std::memory_order_release);
}

void ServingEngine::SchedulerLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Collect: dispatch when max_batch queries are pending, the oldest has
    // aged out, or the engine is shutting down (drain everything then).
    const auto deadline = pending_.front()->enqueued + max_wait;
    while (!stop_ && static_cast<int64_t>(pending_.size()) < options_.max_batch) {
      if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
    std::vector<std::shared_ptr<Pending>> batch;
    const size_t take =
        std::min(pending_.size(), static_cast<size_t>(options_.max_batch));
    batch.assign(pending_.begin(), pending_.begin() + static_cast<int64_t>(take));
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<int64_t>(take));
    lock.unlock();
    DispatchMicroBatch(std::move(batch));
    lock.lock();
  }
}

void ServingEngine::DispatchMicroBatch(std::vector<std::shared_ptr<Pending>> batch) {
  std::vector<query::Query> queries;
  queries.reserve(batch.size());
  for (const auto& p : batch) queries.push_back(p->query);
  // One snapshot per micro-batch, resolved at dispatch: every query that
  // was grouped into this batch is answered by the same model.
  const Target target = Resolve();
  NoteDispatch(target);
  std::vector<double> sels(queries.size());
  EstimateSharded(target, queries, sels.data());
  // Count before fulfilling: a client that has observed every Future ready
  // must also observe the counters covering those queries.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.micro_batches;
    stats_.queries += static_cast<uint64_t>(batch.size());
    stats_.largest_micro_batch =
        std::max(stats_.largest_micro_batch, static_cast<int64_t>(batch.size()));
  }
  for (size_t i = 0; i < batch.size(); ++i) batch[i]->Fulfill(sels[i]);
}

ServingStats ServingEngine::stats() const {
  ServingStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  // Point-in-time gauges, not counters: read from the serving model outside
  // stats_mu_ (the caches and plan telemetry have their own locks/atomics).
  // In registry mode this resolves the current snapshot, so the gauges
  // describe what new dispatches would serve on.
  const Target target = Resolve();
  snapshot.packed_weight_bytes = target.estimator->PackedWeightBytes();
  snapshot.plan_bytes = target.estimator->PlanBytes();
  snapshot.plan_compile_micros = target.estimator->PlanCompileMicros();
  snapshot.plan_cache_hits = target.estimator->PlanCacheHits();
  return snapshot;
}

}  // namespace duet::serve
