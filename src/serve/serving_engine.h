// Concurrent serving engine: multi-threaded batch sharding and async
// micro-batching on top of the batch-first estimator API.
//
// The paper's headline serving claim (Fig. 6/7: Duet's estimation cost is
// low enough for online use) needs two things beyond PR 1's single-thread
// batch engine: parallelism across cores and a way to form batches from a
// stream of individual queries. ServingEngine provides both:
//
//  * EstimateBatch(queries) shards a batch across a private worker pool.
//    Shards split on query boundaries only, and the kernel invariant (per-
//    row results are bitwise independent of batch size, see
//    docs/architecture.md) makes the sharded result bitwise equal to the
//    single-thread batch path — parallelism is free of numeric drift.
//  * Submit(query) -> Future enqueues one query into a micro-batching
//    scheduler: pending queries are collected until `max_batch` of them are
//    waiting or the oldest has waited `max_wait_us`, then dispatched as one
//    sharded batch. This converts high-QPS single-query traffic into the
//    batch shapes the engine is fast at.
//
// Thread-safety contract:
//  * The wrapped estimator must satisfy the CardinalityEstimator
//    concurrency contract (estimation is const-thread-safe while parameters
//    are frozen; all in-tree neural estimators comply — see
//    query/estimator.h).
//  * EstimateBatch and Submit may be called concurrently from any number of
//    client threads. Completion is tracked per call, never with a global
//    pool barrier, so concurrent callers cannot observe each other.
//  * Training / fine-tuning / checkpoint loading must not run while
//    estimates are in flight: quiesce (drain futures, stop issuing calls)
//    first. Parameter updates invalidate the masked-weight caches via
//    tensor::BumpParameterVersion(), so serving resumed after a training
//    step sees the new weights (nn/layers.h documents the cache rules).
#ifndef DUET_SERVE_SERVING_ENGINE_H_
#define DUET_SERVE_SERVING_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "query/estimator.h"
#include "query/query.h"
#include "tensor/packed_weights.h"

namespace duet::serve {

/// Serving engine knobs.
struct ServingOptions {
  /// Worker threads for sharded estimation (0 = hardware concurrency).
  unsigned num_workers = 0;
  /// Sync sharding floor: a batch is split into at most
  /// ceil(batch / min_shard) shards so tiny batches are not scattered
  /// across workers where per-shard overhead would dominate.
  int64_t min_shard = 8;
  /// Micro-batching: dispatch as soon as this many queries are pending...
  int64_t max_batch = 64;
  /// ...or when the oldest pending query has waited this long.
  int64_t max_wait_us = 200;
  /// Packed-weight backend applied to the estimator at engine construction
  /// (tensor/packed_weights.h). kDenseF32 keeps the bitwise-exact fp32
  /// path; kCsrF32 streams only nonzero masked weights (also bitwise-
  /// exact); kInt8 quarters batch-1 weight traffic at bounded accuracy
  /// cost; kF16 halves it at a much tighter bound. The engine owns the
  /// choice for its lifetime — reconfiguring the estimator elsewhere while
  /// an engine serves it violates the quiesce contract.
  tensor::WeightBackend backend = tensor::WeightBackend::kDenseF32;
  /// Compiled-plan execution (nn/inference_plan.h), applied to the
  /// estimator at engine construction like `backend`. On (the default),
  /// no-grad forwards run flattened packed-op programs with the
  /// degree-sorted permutation — bitwise-equal for dense/CSR, measurably
  /// faster at batch 1 (see docs/benchmarks.md plan A/B). Off restores the
  /// per-layer packed path.
  bool compile_plans = true;
};

/// Cumulative counters (monotone since construction), plus a point-in-time
/// gauge of the packed-weight cache footprint.
struct ServingStats {
  uint64_t queries = 0;             ///< queries completed (sync + async)
  uint64_t sync_batches = 0;        ///< EstimateBatch client calls
  uint64_t micro_batches = 0;       ///< async scheduler dispatches
  uint64_t shards = 0;              ///< shard tasks run on the pool
  int64_t largest_micro_batch = 0;  ///< max async dispatch size observed
  /// Bytes held by the estimator's packed-weight caches (including the
  /// compiled plan's packs) when stats() was taken (0 until first
  /// estimate): the weight-memory cost of the serving configuration's
  /// backend, on top of the fp32 parameters.
  uint64_t packed_weight_bytes = 0;
  /// Bytes held by compiled inference plans specifically (subset of
  /// packed_weight_bytes; 0 with compile_plans off).
  uint64_t plan_bytes = 0;
  /// Cumulative wall-clock microseconds the estimator spent compiling
  /// inference plans (point-in-time gauge from the estimator; grows on
  /// first traffic and after every invalidation-triggered recompile).
  uint64_t plan_compile_micros = 0;
  /// Cumulative no-grad forwards the estimator served from an
  /// already-compiled plan (cache hits; 0 with compile_plans off).
  uint64_t plan_cache_hits = 0;
};

/// Shards batches across a private worker pool and micro-batches async
/// single-query traffic. One engine owns its workers and scheduler thread;
/// destruction drains all pending async queries before joining.
class ServingEngine {
  struct Pending;  // forward: shared slot between Future and scheduler

 public:
  /// Completion handle for one submitted query. Cheap to copy; all copies
  /// refer to the same result slot. A default-constructed Future is empty
  /// (valid() == false) and must not be waited on.
  class Future {
   public:
    Future() = default;

    bool valid() const { return state_ != nullptr; }

    /// True once the result is available; never blocks.
    bool Ready() const;

    /// Blocks until the result is available and returns the selectivity
    /// (exactly what EstimateSelectivityBatch would return for this query).
    /// Safe to call from multiple threads and more than once.
    double Wait() const;

   private:
    friend class ServingEngine;
    explicit Future(std::shared_ptr<Pending> state) : state_(std::move(state)) {}
    std::shared_ptr<Pending> state_;
  };

  /// The estimator must outlive the engine and obey the concurrency
  /// contract in query/estimator.h.
  explicit ServingEngine(query::CardinalityEstimator& estimator, ServingOptions options = {});

  /// Drains the async queue (every issued Future still completes), then
  /// stops the scheduler and joins the workers.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Synchronous sharded estimation: splits `queries` into per-worker
  /// shards on query boundaries and runs them concurrently. Returns exactly
  /// what `estimator.EstimateSelectivityBatch(queries)` returns (bitwise),
  /// in order. Safe to call concurrently with other EstimateBatch / Submit
  /// calls.
  std::vector<double> EstimateBatch(const std::vector<query::Query>& queries);

  /// Asynchronous single-query estimation through the micro-batching
  /// scheduler. The returned Future completes after the query's micro-batch
  /// is dispatched and estimated; its value is identical to what the query
  /// would get from EstimateBatch.
  Future Submit(query::Query query);

  /// Snapshot of the cumulative counters.
  ServingStats stats() const;

  unsigned num_workers() const { return pool_.num_threads(); }
  const ServingOptions& options() const { return options_; }

 private:
  /// Runs `queries` sharded across the pool, writing into out[0..n).
  void EstimateSharded(const std::vector<query::Query>& queries, double* out);

  /// Scheduler loop: collects pending queries into micro-batches.
  void SchedulerLoop();

  /// Dispatches up to max_batch pending entries (caller holds no locks).
  void DispatchMicroBatch(std::vector<std::shared_ptr<Pending>> batch);

  query::CardinalityEstimator& estimator_;
  ServingOptions options_;
  ThreadPool pool_;  // private: a shared/global pool would let concurrent
                     // callers observe each other through pool-wide Wait()

  // Async scheduler state.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Pending>> pending_;
  bool stop_ = false;
  std::thread scheduler_;

  mutable std::mutex stats_mu_;
  ServingStats stats_;
};

}  // namespace duet::serve

#endif  // DUET_SERVE_SERVING_ENGINE_H_
