// Concurrent serving engine: multi-threaded batch sharding, async
// micro-batching, and zero-downtime hot swap of model snapshots.
//
// The paper's serving claim is twofold: estimation is cheap enough for
// online use (Fig. 6/7), and *updates* are cheap too — drift is handled by
// fine-tuning, not retraining (Sec. IV-A/IV-D). ServingEngine covers both:
//
//  * EstimateBatch(queries) shards a batch across a private worker pool.
//    Shards split on query boundaries only, and the kernel invariant (per-
//    row results are bitwise independent of batch size, see
//    docs/architecture.md) makes the sharded result bitwise equal to the
//    single-thread batch path — parallelism is free of numeric drift.
//  * Submit(query) -> Future enqueues one query into a micro-batching
//    scheduler: pending queries are collected until `max_batch` of them are
//    waiting or the oldest has waited `max_wait_us`, then dispatched as one
//    sharded batch. This converts high-QPS single-query traffic into the
//    batch shapes the engine is fast at.
//  * Constructed over a serve::ModelRegistry, every dispatch resolves the
//    current model snapshot with one atomic acquire-load and pins it for
//    the batch's duration: in-flight batches finish on the snapshot they
//    started on, new dispatches pick up the latest published snapshot, and
//    a publish (background fine-tune, serve/update_worker.h) swaps models
//    with NO quiesce and no lock on the estimate path. Each batch is served
//    end-to-end by exactly one snapshot — never a mid-batch mix.
//
// Thread-safety contract:
//  * EstimateBatch and Submit may be called concurrently from any number of
//    client threads. Completion is tracked per call, never with a global
//    pool barrier, so concurrent callers cannot observe each other.
//  * Registry mode: parameter updates NEVER touch a served model. The
//    update path clones the current snapshot, fine-tunes the clone, and
//    publishes it as a new immutable snapshot whose caches are pinned
//    (nn/layers.h); superseded snapshots retire when their last in-flight
//    batch releases them. Training a clone concurrently with serving is
//    safe by construction — the old "quiesce serving around training"
//    rule survives only for fixed-estimator mode below.
//  * Fixed-estimator mode (the estimator-reference constructor): the
//    wrapped estimator must satisfy the CardinalityEstimator concurrency
//    contract, and training / fine-tuning / checkpoint loading that
//    estimator's model must not run while estimates are in flight — drain
//    futures and stop issuing calls first. Parameter updates then
//    invalidate the packed caches via tensor::BumpParameterVersion(), so
//    serving resumed afterwards sees the new weights. Wrap a ModelRegistry
//    instead to drop this restriction.
#ifndef DUET_SERVE_SERVING_ENGINE_H_
#define DUET_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "query/estimator.h"
#include "query/query.h"
#include "tensor/packed_weights.h"

namespace duet::serve {

class ModelRegistry;
class ModelSnapshot;
class UpdateWorker;

/// Serving engine knobs.
struct ServingOptions {
  /// Worker threads for sharded estimation (0 = hardware concurrency).
  unsigned num_workers = 0;
  /// Sync sharding floor: a batch is split into at most
  /// ceil(batch / min_shard) shards so tiny batches are not scattered
  /// across workers where per-shard overhead would dominate.
  int64_t min_shard = 8;
  /// Micro-batching: dispatch as soon as this many queries are pending...
  int64_t max_batch = 64;
  /// ...or when the oldest pending query has waited this long.
  int64_t max_wait_us = 200;
  /// Packed-weight backend applied to the estimator at engine construction
  /// (tensor/packed_weights.h). kDenseF32 keeps the bitwise-exact fp32
  /// path; kCsrF32 streams only nonzero masked weights (also bitwise-
  /// exact); kInt8 quarters batch-1 weight traffic at bounded accuracy
  /// cost; kF16 halves it at a much tighter bound. Fixed-estimator mode
  /// only: in registry mode the registry owns the configuration
  /// (RegistryOptions::backend), so every snapshot serves under one
  /// consistent setting and this field is ignored.
  tensor::WeightBackend backend = tensor::WeightBackend::kDenseF32;
  /// Compiled-plan execution (nn/inference_plan.h), applied like `backend`
  /// at construction. On (the default), no-grad forwards run flattened
  /// packed-op programs with the degree-sorted permutation —
  /// bitwise-equal for dense/CSR, measurably faster at batch 1 (see
  /// docs/benchmarks.md plan A/B). Ignored in registry mode
  /// (RegistryOptions::compile_plans governs).
  bool compile_plans = true;
};

/// Cumulative counters (monotone since construction), plus point-in-time
/// gauges of the serving configuration's cache footprint and snapshot.
struct ServingStats {
  uint64_t queries = 0;             ///< queries completed (sync + async)
  uint64_t sync_batches = 0;        ///< EstimateBatch client calls
  uint64_t micro_batches = 0;       ///< async scheduler dispatches
  uint64_t shards = 0;              ///< shard tasks run on the pool
  int64_t largest_micro_batch = 0;  ///< max async dispatch size observed
  /// Snapshot id the most recent dispatch served on (0 in fixed-estimator
  /// mode — there is no registry and no snapshot).
  uint64_t snapshot_id = 0;
  /// Dispatches that observed a different snapshot than the previous
  /// dispatch did: the number of hot swaps traffic has crossed.
  uint64_t snapshot_swaps = 0;
  /// Observed-cardinality pairs routed through ReportObserved.
  uint64_t feedback_reported = 0;
  /// Bytes held by the serving model's packed-weight caches (including the
  /// compiled plan's packs) when stats() was taken (0 until first
  /// estimate); in registry mode, read from the current snapshot.
  uint64_t packed_weight_bytes = 0;
  /// Bytes held by compiled inference plans specifically (subset of
  /// packed_weight_bytes; 0 with plans off).
  uint64_t plan_bytes = 0;
  /// Cumulative wall-clock microseconds the serving model spent compiling
  /// inference plans (in registry mode: the current snapshot's model).
  uint64_t plan_compile_micros = 0;
  /// Cumulative no-grad forwards served from an already-compiled plan
  /// (cache hits; 0 with plans off).
  uint64_t plan_cache_hits = 0;
};

/// Shards batches across a private worker pool, micro-batches async
/// single-query traffic, and (in registry mode) hot-swaps model snapshots
/// under live traffic. One engine owns its workers and scheduler thread;
/// destruction drains all pending async queries before joining.
class ServingEngine {
  struct Pending;  // forward: shared slot between Future and scheduler

 public:
  /// Completion handle for one submitted query. Cheap to copy; all copies
  /// refer to the same result slot. A default-constructed Future is empty
  /// (valid() == false) and must not be waited on.
  class Future {
   public:
    Future() = default;

    bool valid() const { return state_ != nullptr; }

    /// True once the result is available; never blocks.
    bool Ready() const;

    /// Blocks until the result is available and returns the selectivity
    /// (exactly what EstimateSelectivityBatch would return for this query).
    /// Safe to call from multiple threads and more than once.
    double Wait() const;

   private:
    friend class ServingEngine;
    explicit Future(std::shared_ptr<Pending> state) : state_(std::move(state)) {}
    std::shared_ptr<Pending> state_;
  };

  /// Fixed-estimator mode: the estimator must outlive the engine and obey
  /// the concurrency contract in query/estimator.h (including its quiesce
  /// rule for parameter updates).
  explicit ServingEngine(query::CardinalityEstimator& estimator, ServingOptions options = {});

  /// Registry mode: every dispatch serves the registry's current snapshot;
  /// publishes hot-swap under live traffic with no quiesce. The registry
  /// must outlive the engine. ServingOptions::backend / compile_plans are
  /// ignored (RegistryOptions governs them).
  explicit ServingEngine(ModelRegistry& registry, ServingOptions options = {});

  /// Drains the async queue (every issued Future still completes), then
  /// stops the scheduler and joins the workers.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Synchronous sharded estimation: splits `queries` into per-worker
  /// shards on query boundaries and runs them concurrently. Returns exactly
  /// what the serving model's EstimateSelectivityBatch(queries) returns
  /// (bitwise), in order. Safe to call concurrently with other
  /// EstimateBatch / Submit calls — and, in registry mode, with snapshot
  /// publishes: the whole batch runs on the snapshot current at dispatch
  /// (its id is written to *snapshot_id when non-null; 0 in fixed mode).
  std::vector<double> EstimateBatch(const std::vector<query::Query>& queries,
                                    uint64_t* snapshot_id = nullptr);

  /// Asynchronous single-query estimation through the micro-batching
  /// scheduler. The returned Future completes after the query's micro-batch
  /// is dispatched and estimated; its value is identical to what the query
  /// would get from EstimateBatch at that micro-batch's snapshot.
  Future Submit(query::Query query);

  /// Feedback hook (the adaptation input): reports the true cardinality the
  /// execution engine observed for a served query. Routed to the attached
  /// UpdateWorker's feedback buffer when one is attached, else to the
  /// estimator's ObserveTrueCardinality hook. Cheap; serving-path safe.
  void ReportObserved(const query::Query& query, double true_cardinality);

  /// Attaches (or detaches, with nullptr) the update worker that receives
  /// ReportObserved feedback. The worker must outlive the engine or be
  /// detached first.
  void AttachUpdateWorker(UpdateWorker* worker);

  /// Snapshot of the cumulative counters.
  ServingStats stats() const;

  unsigned num_workers() const { return pool_.num_threads(); }
  const ServingOptions& options() const { return options_; }

 private:
  /// What one dispatch serves on: the estimator plus (registry mode) the
  /// pinned snapshot keeping it alive for the batch's duration.
  struct Target {
    query::CardinalityEstimator* estimator = nullptr;
    std::shared_ptr<const ModelSnapshot> pin;
    uint64_t snapshot_id = 0;
  };

  /// Resolves the serving target for one dispatch: the fixed estimator, or
  /// one acquire-load of the registry's current snapshot.
  Target Resolve() const;

  /// Counts a dispatch against `target`'s snapshot (swap detection).
  void NoteDispatch(const Target& target);

  /// Runs `queries` sharded across the pool on `target`, writing into
  /// out[0..n).
  void EstimateSharded(const Target& target, const std::vector<query::Query>& queries,
                       double* out);

  /// Scheduler loop: collects pending queries into micro-batches.
  void SchedulerLoop();

  /// Dispatches up to max_batch pending entries (caller holds no locks).
  void DispatchMicroBatch(std::vector<std::shared_ptr<Pending>> batch);

  query::CardinalityEstimator* fixed_estimator_ = nullptr;  // fixed mode
  ModelRegistry* registry_ = nullptr;                       // registry mode
  std::atomic<UpdateWorker*> feedback_{nullptr};
  ServingOptions options_;
  ThreadPool pool_;  // private: a shared/global pool would let concurrent
                     // callers observe each other through pool-wide Wait()

  // Async scheduler state.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Pending>> pending_;
  bool stop_ = false;
  std::thread scheduler_;

  mutable std::mutex stats_mu_;
  ServingStats stats_;
};

}  // namespace duet::serve

#endif  // DUET_SERVE_SERVING_ENGINE_H_
