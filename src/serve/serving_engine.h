// Concurrent serving engine: multi-threaded batch sharding, async
// micro-batching, and zero-downtime hot swap of model snapshots.
//
// The paper's serving claim is twofold: estimation is cheap enough for
// online use (Fig. 6/7), and *updates* are cheap too — drift is handled by
// fine-tuning, not retraining (Sec. IV-A/IV-D). ServingEngine covers both:
//
//  * EstimateBatch(queries) shards a batch across a private worker pool.
//    Shards split on query boundaries only, and the kernel invariant (per-
//    row results are bitwise independent of batch size, see
//    docs/architecture.md) makes the sharded result bitwise equal to the
//    single-thread batch path — parallelism is free of numeric drift.
//  * Submit(query) -> Future enqueues one query into a micro-batching
//    scheduler: pending queries are collected until `max_batch` of them are
//    waiting or the oldest has waited `max_wait_us`, then dispatched as one
//    sharded batch. This converts high-QPS single-query traffic into the
//    batch shapes the engine is fast at.
//  * Constructed over a serve::ModelRegistry, every dispatch resolves the
//    current model snapshot with one atomic acquire-load and pins it for
//    the batch's duration: in-flight batches finish on the snapshot they
//    started on, new dispatches pick up the latest published snapshot, and
//    a publish (background fine-tune, serve/update_worker.h) swaps models
//    with NO quiesce and no lock on the estimate path. Each batch is served
//    end-to-end by exactly one snapshot — never a mid-batch mix.
//
// Thread-safety contract:
//  * EstimateBatch and Submit may be called concurrently from any number of
//    client threads. Completion is tracked per call, never with a global
//    pool barrier, so concurrent callers cannot observe each other.
//  * Registry mode: parameter updates NEVER touch a served model. The
//    update path clones the current snapshot, fine-tunes the clone, and
//    publishes it as a new immutable snapshot whose caches are pinned
//    (nn/layers.h); superseded snapshots retire when their last in-flight
//    batch releases them. Training a clone concurrently with serving is
//    safe by construction — the old "quiesce serving around training"
//    rule survives only for fixed-estimator mode below.
//  * Fixed-estimator mode (the estimator-reference constructor): the
//    wrapped estimator must satisfy the CardinalityEstimator concurrency
//    contract, and training / fine-tuning / checkpoint loading that
//    estimator's model must not run while estimates are in flight — drain
//    futures and stop issuing calls first. Parameter updates then
//    invalidate the packed caches via tensor::BumpParameterVersion(), so
//    serving resumed afterwards sees the new weights. Wrap a ModelRegistry
//    instead to drop this restriction.
//
// Resilience (docs/resilience.md): requests carry optional deadlines, the
// async queue is optionally bounded with shed-on-full, a circuit breaker
// trips to fallback-only serving after consecutive neural failures, and an
// attached classical fallback estimator answers every degraded query with a
// bounded-error estimate flagged in the result. The engine never blocks a
// caller on overload and never lets a neural failure escape as a crash.
#ifndef DUET_SERVE_SERVING_ENGINE_H_
#define DUET_SERVE_SERVING_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "query/estimator.h"
#include "query/query.h"
#include "tensor/packed_weights.h"

namespace duet::serve {

class ModelRegistry;
class ModelSnapshot;
class ModelZoo;
class ZooHandle;
class UpdateWorker;

/// Serving engine knobs.
struct ServingOptions {
  /// Worker threads for sharded estimation (0 = hardware concurrency).
  unsigned num_workers = 0;
  /// Sync sharding floor: a batch is split into at most
  /// ceil(batch / min_shard) shards so tiny batches are not scattered
  /// across workers where per-shard overhead would dominate.
  int64_t min_shard = 8;
  /// Micro-batching: dispatch as soon as this many queries are pending...
  int64_t max_batch = 64;
  /// ...or when the oldest pending query has waited this long.
  int64_t max_wait_us = 200;
  /// Packed-weight backend applied to the estimator at engine construction
  /// (tensor/packed_weights.h). kDenseF32 keeps the bitwise-exact fp32
  /// path; kCsrF32 streams only nonzero masked weights (also bitwise-
  /// exact); kInt8 quarters batch-1 weight traffic at bounded accuracy
  /// cost; kF16 halves it at a much tighter bound. Fixed-estimator mode
  /// only: in registry mode the registry owns the configuration
  /// (RegistryOptions::backend), so every snapshot serves under one
  /// consistent setting and this field is ignored.
  tensor::WeightBackend backend = tensor::WeightBackend::kDenseF32;
  /// Compiled-plan execution (nn/inference_plan.h), applied like `backend`
  /// at construction. On (the default), no-grad forwards run flattened
  /// packed-op programs with the degree-sorted permutation —
  /// bitwise-equal for dense/CSR, measurably faster at batch 1 (see
  /// docs/benchmarks.md plan A/B). Ignored in registry mode
  /// (RegistryOptions::compile_plans governs).
  bool compile_plans = true;
  /// Admission control: async queries pending beyond this depth are shed —
  /// their Future completes immediately with a flagged fallback estimate,
  /// never blocking the caller. 0 = unbounded (no shedding).
  int64_t max_queue = 0;
  /// Deadline applied to Submit calls that pass none (0 = no default).
  /// Deadlines are relative to submission; the scheduler drops expired
  /// entries before dispatch and serves them from the fallback instead.
  int64_t default_deadline_us = 0;
  /// Circuit breaker: after this many consecutive failed neural dispatches
  /// the engine serves fallback-only, then probes its way back with single
  /// dispatches after breaker_cooldown_us (docs/resilience.md §3).
  int64_t breaker_threshold = 5;
  int64_t breaker_cooldown_us = 50 * 1000;
  /// Cross-request GEMV→GEMM fusion: coalesce concurrent async submissions
  /// that resolve to the same target (same snapshot; in zoo mode, same
  /// model key) into ONE batched dispatch — a GEMM over the stacked feature
  /// rows — instead of N independent batch-1 GEMVs. Per-request results are
  /// bitwise identical either way (kernel batch invariance,
  /// docs/architecture.md §2); fusion buys the weight-reuse of the batched
  /// kernels, which is the dominant cost at batch 1. Off = the unfused A/B
  /// arm for benchmarks: every admitted async query dispatches alone.
  bool fuse_requests = true;
};

/// One query's answer plus how it was produced. EstimateBatchEx and
/// Future::Result() return these; the plain EstimateBatch / Future::Wait
/// surfaces keep returning bare selectivities.
struct Estimate {
  double selectivity = 0.0;
  /// Served by the attached classical fallback (or 0.0 with none attached)
  /// rather than the neural model — because the query was shed, expired, hit
  /// a neural failure, or the circuit breaker was open.
  bool fallback = false;
  /// The request missed its deadline before (async) or during (sync)
  /// estimation.
  bool deadline_expired = false;
  /// Rejected at admission: the bounded async queue was full.
  bool shed = false;

  bool degraded() const { return fallback || deadline_expired || shed; }
};

/// Cumulative counters (monotone since construction), plus point-in-time
/// gauges of the serving configuration's cache footprint and snapshot.
struct ServingStats {
  uint64_t queries = 0;             ///< queries completed (sync + async)
  uint64_t sync_batches = 0;        ///< EstimateBatch client calls
  uint64_t micro_batches = 0;       ///< async scheduler dispatches
  uint64_t shards = 0;              ///< shard tasks run on the pool
  int64_t largest_micro_batch = 0;  ///< max async dispatch size observed
  /// Async queries served through a fused dispatch group (size >= 2): the
  /// scheduler coalesced them with concurrent same-target requests into one
  /// batched GEMM execution instead of independent GEMVs. 0 with
  /// ServingOptions::fuse_requests off.
  uint64_t fused_requests = 0;
  /// Median fused-group size, over groups of size >= 2 (exact histogram,
  /// not log-bucketed; 0.0 until the first fused group dispatches).
  double fusion_batch_p50 = 0.0;
  /// Snapshot id the most recent dispatch served on (0 in fixed-estimator
  /// mode — there is no registry and no snapshot).
  uint64_t snapshot_id = 0;
  /// Dispatches that observed a different snapshot than the previous
  /// dispatch did: the number of hot swaps traffic has crossed.
  uint64_t snapshot_swaps = 0;
  /// Observed-cardinality pairs routed through ReportObserved.
  uint64_t feedback_reported = 0;
  /// Bytes held by the serving model's packed-weight caches (including the
  /// compiled plan's packs) when stats() was taken (0 until first
  /// estimate); in registry mode, read from the current snapshot.
  uint64_t packed_weight_bytes = 0;
  /// Bytes held by compiled inference plans specifically (subset of
  /// packed_weight_bytes; 0 with plans off).
  uint64_t plan_bytes = 0;
  /// Cumulative wall-clock microseconds the serving model spent compiling
  /// inference plans (in registry mode: the current snapshot's model).
  uint64_t plan_compile_micros = 0;
  /// Cumulative no-grad forwards served from an already-compiled plan
  /// (cache hits; 0 with plans off).
  uint64_t plan_cache_hits = 0;
  /// Queries whose deadline expired before/during estimation (each also
  /// counts in fallback_served when answered by the fallback).
  uint64_t deadline_missed = 0;
  /// Queries rejected at admission because the bounded queue was full.
  uint64_t shed = 0;
  /// Queries answered by the fallback path (shed + expired + neural
  /// failures + breaker-open dispatches).
  uint64_t fallback_served = 0;
  /// Shard tasks whose neural estimate threw (each failed shard's queries
  /// were answered by the fallback).
  uint64_t neural_failures = 0;
  /// Times the circuit breaker tripped open.
  uint64_t breaker_trips = 0;
  /// Breaker state when stats() was taken: 0 closed, 1 open, 2 half-open.
  uint64_t breaker_state = 0;
  /// Async queue depth when stats() was taken / deepest ever observed.
  int64_t queue_depth = 0;
  int64_t queue_high_water = 0;
  /// Submission-to-completion latency percentiles over admitted async
  /// queries (log-bucketed histogram: values are bucket upper bounds, ~2x
  /// resolution; 0 until the first async query completes). p999 is reported
  /// at the same quantile set as the network front-end's NetStats
  /// (src/net/net_stats.h), so in-process and wire latency are comparable.
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
};

/// Shards batches across a private worker pool, micro-batches async
/// single-query traffic, and (in registry mode) hot-swaps model snapshots
/// under live traffic. One engine owns its workers and scheduler thread;
/// destruction drains all pending async queries before joining.
class ServingEngine {
  struct Pending;  // forward: shared slot between Future and scheduler

 public:
  /// Completion handle for one submitted query. Cheap to copy; all copies
  /// refer to the same result slot. A default-constructed Future is empty
  /// (valid() == false) and must not be waited on.
  class Future {
   public:
    Future() = default;

    bool valid() const { return state_ != nullptr; }

    /// True once the result is available; never blocks.
    bool Ready() const;

    /// Blocks until the result is available and returns the selectivity
    /// (exactly what EstimateSelectivityBatch would return for this query,
    /// unless the result was degraded — check Result().degraded()).
    /// Safe to call from multiple threads and more than once.
    double Wait() const;

    /// Blocks like Wait() but returns the full result, including the
    /// degradation flags (fallback / deadline_expired / shed).
    Estimate Result() const;

   private:
    friend class ServingEngine;
    explicit Future(std::shared_ptr<Pending> state) : state_(std::move(state)) {}
    std::shared_ptr<Pending> state_;
  };

  /// Fixed-estimator mode: the estimator must outlive the engine and obey
  /// the concurrency contract in query/estimator.h (including its quiesce
  /// rule for parameter updates).
  explicit ServingEngine(query::CardinalityEstimator& estimator, ServingOptions options = {});

  /// Registry mode: every dispatch serves the registry's current snapshot;
  /// publishes hot-swap under live traffic with no quiesce. The registry
  /// must outlive the engine. ServingOptions::backend / compile_plans are
  /// ignored (RegistryOptions governs them).
  explicit ServingEngine(ModelRegistry& registry, ServingOptions options = {});

  /// Zoo mode: requests are routed by model key through a serve::ModelZoo —
  /// the keyed EstimateBatch/EstimateBatchEx/Submit overloads below resolve
  /// (and pin) the named artifact model per dispatch; the key-less overloads
  /// CHECK-fail. Dispatch pins are ZooPins, so a model serving an in-flight
  /// batch is never evicted under it, and a key whose artifact fails to
  /// load degrades that batch to the fallback (flagged) instead of
  /// crashing. The zoo must outlive the engine. ServingOptions::backend /
  /// compile_plans are ignored (artifacts are frozen at write time).
  explicit ServingEngine(ModelZoo& zoo, ServingOptions options = {});

  /// Drains the async queue (every issued Future still completes), then
  /// stops the scheduler and joins the workers.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Synchronous sharded estimation: splits `queries` into per-worker
  /// shards on query boundaries and runs them concurrently. Returns exactly
  /// what the serving model's EstimateSelectivityBatch(queries) returns
  /// (bitwise), in order. Safe to call concurrently with other
  /// EstimateBatch / Submit calls — and, in registry mode, with snapshot
  /// publishes: the whole batch runs on the snapshot current at dispatch
  /// (its id is written to *snapshot_id when non-null; 0 in fixed mode).
  std::vector<double> EstimateBatch(const std::vector<query::Query>& queries,
                                    uint64_t* snapshot_id = nullptr);

  /// EstimateBatch with per-request resilience metadata. `deadline_us` is a
  /// latency budget relative to the call (0 = none): the sync path runs on
  /// the caller's thread so the batch is always attempted, but results that
  /// arrive after the budget are flagged deadline_expired (and counted) so
  /// the caller knows the optimizer has moved on. Degraded queries (neural
  /// failure, breaker open) carry fallback == true.
  std::vector<Estimate> EstimateBatchEx(const std::vector<query::Query>& queries,
                                        int64_t deadline_us = 0,
                                        uint64_t* snapshot_id = nullptr);

  /// Keyed variants for zoo mode: identical semantics, but the dispatch
  /// serves the zoo model registered under `model_key` (resolved and pinned
  /// once per call). In zoo mode *snapshot_id receives the artifact
  /// fingerprint. Only valid on a zoo-mode engine.
  std::vector<double> EstimateBatch(const std::string& model_key,
                                    const std::vector<query::Query>& queries,
                                    uint64_t* snapshot_id = nullptr);
  std::vector<Estimate> EstimateBatchEx(const std::string& model_key,
                                        const std::vector<query::Query>& queries,
                                        int64_t deadline_us = 0,
                                        uint64_t* snapshot_id = nullptr);

  /// Asynchronous single-query estimation through the micro-batching
  /// scheduler. The returned Future completes after the query's micro-batch
  /// is dispatched and estimated; its value is identical to what the query
  /// would get from EstimateBatch at that micro-batch's snapshot.
  ///
  /// `deadline_us` (relative to submission; 0 = options().default_deadline_us,
  /// and 0 again = none) bounds how long the query may wait: the scheduler
  /// drops expired entries before dispatch and answers them from the
  /// fallback, flagged deadline_expired. If the queue is bounded
  /// (options().max_queue) and full, the query is shed instead of enqueued:
  /// the Future completes immediately with a flagged fallback estimate —
  /// Submit never blocks on overload.
  Future Submit(query::Query query, int64_t deadline_us = 0);

  /// Keyed Submit for zoo mode: the query joins the shared micro-batching
  /// queue; at dispatch the scheduler groups pending queries BY KEY and
  /// serves each group on its own pinned zoo model (one resolve per group,
  /// never a mid-group mix of models). Only valid on a zoo-mode engine.
  Future Submit(const std::string& model_key, query::Query query, int64_t deadline_us = 0);

  /// Completion-callback variant of Submit for event-driven callers (the
  /// epoll front-end, src/net/server.h): `done` is invoked exactly once
  /// with the final Estimate — from the scheduler/worker thread when the
  /// query's micro-batch completes, or synchronously on the caller's thread
  /// when it is shed at admission. The callback must be cheap and
  /// non-blocking (it runs inside the dispatch path); it must not call back
  /// into this engine. Identical routing, deadlines, shedding, fusion and
  /// stats to Submit().
  void SubmitWithCallback(query::Query query, int64_t deadline_us,
                          std::function<void(const Estimate&)> done);

  /// Keyed SubmitWithCallback for zoo mode (the Submit key semantics).
  void SubmitWithCallback(const std::string& model_key, query::Query query,
                          int64_t deadline_us, std::function<void(const Estimate&)> done);

  /// Admission hook for front-ends that maintain their own in-flight
  /// budgets (src/net/server.h): answers every query straight from the
  /// attached fallback on the caller's thread, flagged shed + fallback,
  /// and counts them like queue-overflow sheds — the docs/resilience.md §2
  /// shed path without touching the async queue. Never blocks or throws.
  std::vector<Estimate> ShedBatch(const std::vector<query::Query>& queries);

  /// True when dispatches are routed by model key (zoo mode) — callers must
  /// use the keyed overloads; false for fixed/registry engines, whose
  /// key-less overloads must be used instead.
  bool keyed() const { return zoo_ != nullptr; }

  /// Feedback hook (the adaptation input): reports the true cardinality the
  /// execution engine observed for a served query. Routed to the attached
  /// UpdateWorker's feedback buffer when one is attached, else to the
  /// estimator's ObserveTrueCardinality hook. Cheap; serving-path safe.
  void ReportObserved(const query::Query& query, double true_cardinality);

  /// Attaches (or detaches, with nullptr) the update worker that receives
  /// ReportObserved feedback. The worker must outlive the engine or be
  /// detached first.
  void AttachUpdateWorker(UpdateWorker* worker);

  /// Attaches (or detaches, with nullptr) the classical fallback estimator
  /// that answers degraded queries — typically one of the traditional
  /// baselines (baselines::IndependenceEstimator, baselines::SamplingEstimator):
  /// model-free, thread-safe after construction, and orders of magnitude
  /// cheaper than the neural path. It must outlive the engine or be
  /// detached first. With none attached, degraded queries return
  /// selectivity 0.0 (still flagged) rather than blocking or throwing.
  void AttachFallback(query::CardinalityEstimator* fallback);

  /// Snapshot of the cumulative counters.
  ServingStats stats() const;

  unsigned num_workers() const { return pool_.num_threads(); }
  const ServingOptions& options() const { return options_; }

 private:
  /// What one dispatch serves on: the estimator plus (registry mode) the
  /// pinned snapshot keeping it alive for the batch's duration.
  struct Target {
    query::CardinalityEstimator* estimator = nullptr;
    std::shared_ptr<const ModelSnapshot> pin;
    /// Zoo mode: the pinned model (nullptr estimator + nullptr zoo_pin
    /// means the key's artifact failed to load — serve the fallback).
    std::shared_ptr<const ZooHandle> zoo_pin;
    uint64_t snapshot_id = 0;
  };

  /// Resolves the serving target for one dispatch: the fixed estimator, or
  /// one acquire-load of the registry's current snapshot. Zoo mode returns
  /// an empty target (keyed dispatches resolve through ResolveKey).
  Target Resolve() const;

  /// Zoo-mode resolve: pins `model_key`'s artifact model for the dispatch.
  /// A failed load yields an empty target (estimator == nullptr) — the
  /// dispatch then degrades to the fallback, flagged.
  Target ResolveKey(const std::string& model_key) const;

  /// Shared sync-batch implementation behind the keyed and key-less
  /// EstimateBatchEx overloads.
  std::vector<Estimate> EstimateBatchImpl(const std::string* model_key,
                                          const std::vector<query::Query>& queries,
                                          int64_t deadline_us, uint64_t* snapshot_id);

  /// Shared Submit implementation behind the keyed and key-less overloads
  /// (Future and callback flavours both funnel here; `done` may be empty).
  Future SubmitImpl(std::string model_key, query::Query query, int64_t deadline_us,
                    std::function<void(const Estimate&)> done);

  /// Counts a dispatch against `target`'s snapshot (swap detection).
  void NoteDispatch(const Target& target);

  /// Runs `queries` sharded across the pool on `target`, writing into
  /// out[0..n). A shard whose neural estimate throws is answered by the
  /// fallback (flagged in `degraded` when non-null) — the exception never
  /// escapes. Returns the number of failed shards.
  int64_t EstimateSharded(const Target& target, const std::vector<query::Query>& queries,
                          double* out, bool* degraded);

  /// Breaker-aware batch serve: full fallback when the breaker is open,
  /// else EstimateSharded with the dispatch outcome fed back to the breaker.
  void ServeBatch(const Target& target, const std::vector<query::Query>& queries,
                  double* out, bool* degraded);

  /// Answers queries[lo..lo+len) from the attached fallback estimator (0.0
  /// each with none attached / on fallback failure) and counts them served.
  void ServeFallback(const std::vector<query::Query>& queries, int64_t lo, int64_t len,
                     double* out);

  /// Breaker gate for one dispatch: true = attempt the neural path (possibly
  /// as the elected half-open probe), false = serve fallback.
  bool AllowNeural();

  /// Feeds one dispatch outcome to the breaker (trip / probe / reset).
  void RecordNeuralOutcome(bool failed);

  /// Scheduler loop: collects pending queries into micro-batches.
  void SchedulerLoop();

  /// Dispatches up to max_batch pending entries (caller holds no locks).
  void DispatchMicroBatch(std::vector<std::shared_ptr<Pending>> batch);

  /// Records one admitted async query's submission-to-completion latency
  /// into the log-bucketed histogram (caller holds stats_mu_).
  void RecordLatencyLocked(int64_t micros);

  query::CardinalityEstimator* fixed_estimator_ = nullptr;  // fixed mode
  ModelRegistry* registry_ = nullptr;                       // registry mode
  ModelZoo* zoo_ = nullptr;                                 // zoo mode
  std::atomic<UpdateWorker*> feedback_{nullptr};
  std::atomic<query::CardinalityEstimator*> fallback_{nullptr};
  ServingOptions options_;
  ThreadPool pool_;  // private: a shared/global pool would let concurrent
                     // callers observe each other through pool-wide Wait()

  // Circuit breaker (docs/resilience.md §3): lock-free state machine fed by
  // dispatch outcomes. 0 = closed, 1 = open, 2 = half-open (one elected
  // probe dispatch in flight).
  std::atomic<int> breaker_state_{0};
  std::atomic<int64_t> consecutive_failures_{0};
  std::atomic<int64_t> breaker_open_until_us_{0};

  // Async scheduler state. queue_mu_ is mutable so stats() can read the
  // queue-depth gauge.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Pending>> pending_;
  bool stop_ = false;
  std::thread scheduler_;

  mutable std::mutex stats_mu_;
  ServingStats stats_;
  /// Log-bucketed latency histogram: bucket b counts admitted async queries
  /// with latency in [2^(b-1), 2^b) microseconds.
  std::array<uint64_t, 40> latency_buckets_{};
  uint64_t latency_count_ = 0;
  /// Exact histogram of fused dispatch-group sizes (size -> group count;
  /// sizes >= 2 only — bounded by max_batch, so the map stays tiny).
  /// Guarded by stats_mu_; stats() derives fusion_batch_p50 from it.
  std::map<int64_t, uint64_t> fusion_size_counts_;
  uint64_t fusion_group_count_ = 0;
};

}  // namespace duet::serve

#endif  // DUET_SERVE_SERVING_ENGINE_H_
