#include "serve/model_zoo.h"

#include <atomic>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace duet::serve {

/// One registered key. `model`, `bytes`, `last_used`, `pins`, `loads`,
/// `evictions`, `last_load_micros` are guarded by the zoo's mu_; `load_mu`
/// serializes first-touch loads of this key only; `serves` is a relaxed
/// atomic so NoteServed stays off every lock.
struct ZooEntry {
  std::string key;
  std::string path;
  std::shared_ptr<const artifact::ArtifactModel> model;
  uint64_t bytes = 0;
  uint64_t last_used = 0;
  uint64_t pins = 0;
  uint64_t loads = 0;
  uint64_t evictions = 0;
  double last_load_micros = 0.0;
  std::atomic<uint64_t> serves{0};
  std::mutex load_mu;
};

ZooHandle::ZooHandle(ModelZoo* zoo, std::shared_ptr<ZooEntry> entry,
                     std::shared_ptr<const artifact::ArtifactModel> model)
    : zoo_(zoo), entry_(std::move(entry)), model_(std::move(model)) {}

ZooHandle::~ZooHandle() { zoo_->Release(entry_); }

const std::string& ZooHandle::key() const { return entry_->key; }

void ZooHandle::NoteServed(uint64_t queries) const {
  entry_->serves.fetch_add(queries, std::memory_order_relaxed);
}

ModelZoo::ModelZoo(ZooOptions options) : options_(options) {}

void ModelZoo::Register(const std::string& key, std::string path) {
  DUET_CHECK(!key.empty()) << "zoo keys must be non-empty";
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<ZooEntry>& slot = entries_[key];
  if (slot == nullptr) {
    slot = std::make_shared<ZooEntry>();
    slot->key = key;
  } else if (slot->model != nullptr) {
    // Re-publish: drop the zoo's resident copy so the next acquire loads
    // the new artifact. Outstanding pins hold their own shared_ptr to the
    // superseded model, so in-flight batches finish on the mapping they
    // resolved (the registry retirement rule).
    EvictLocked(*slot);
  }
  slot->path = std::move(path);
}

bool ModelZoo::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) != 0;
}

size_t ModelZoo::NumRegistered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

artifact::ArtifactStatus ModelZoo::TryAcquire(const std::string& key, ZooPin* out) {
  if (out == nullptr) return artifact::ArtifactStatus::Fail("null pin passed to TryAcquire");
  std::shared_ptr<ZooEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return artifact::ArtifactStatus::Fail("model key not registered: " + key);
    }
    entry = it->second;
    if (entry->model != nullptr) {
      *out = MakePinLocked(entry);
      return artifact::ArtifactStatus::Ok();
    }
  }

  // First touch (or post-eviction touch): load outside the zoo lock so
  // loads of different keys overlap; the per-entry mutex collapses
  // duplicate loads of the same key to one.
  std::lock_guard<std::mutex> load_lock(entry->load_mu);
  for (;;) {
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (entry->model != nullptr) {  // a racing acquire beat us to it
        *out = MakePinLocked(entry);
        return artifact::ArtifactStatus::Ok();
      }
      path = entry->path;
    }

    Timer timer;
    std::shared_ptr<const artifact::ArtifactModel> model;
    artifact::ArtifactLoadOptions load_options;
    load_options.verify_checksums = options_.verify_checksums;
    const artifact::ArtifactStatus st = artifact::LoadArtifact(path, load_options, &model);
    if (!st.ok) return st;  // zoo untouched: nothing resident, no counters moved
    const double load_micros = timer.Micros();

    std::lock_guard<std::mutex> lock(mu_);
    if (entry->path != path) continue;  // re-registered mid-load: redo with the new path
    entry->model = std::move(model);
    entry->bytes = entry->model->mapped_bytes();
    entry->loads += 1;
    entry->last_load_micros = load_micros;
    resident_bytes_ += entry->bytes;
    counters_.loads += 1;
    counters_.last_load_micros = load_micros;
    counters_.total_load_micros += load_micros;
    history_.push_back(entry->model);
    *out = MakePinLocked(entry);
    // The new resident may push the zoo over budget; evict colder models
    // (never this one — it is pinned) before anyone can observe the excess.
    EnforceBudgetLocked();
    return artifact::ArtifactStatus::Ok();
  }
}

ZooPin ModelZoo::Acquire(const std::string& key) {
  ZooPin pin;
  const artifact::ArtifactStatus st = TryAcquire(key, &pin);
  DUET_CHECK(st.ok) << "zoo acquire failed: " << st.error;
  return pin;
}

bool ModelZoo::Evict(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  ZooEntry& entry = *it->second;
  if (entry.model == nullptr || entry.pins > 0) return false;
  EvictLocked(entry);
  return true;
}

void ModelZoo::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (entry->model != nullptr && entry->pins == 0) EvictLocked(*entry);
  }
}

uint64_t ModelZoo::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

uint64_t ModelZoo::ResidentModels() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [key, entry] : entries_) n += entry->model != nullptr ? 1 : 0;
  return n;
}

uint64_t ModelZoo::AliveSnapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t alive = 0;
  // Prune expired entries while counting. Skip the self-assignment when
  // nothing has been pruned yet: moving a weak_ptr onto itself empties it
  // (the ModelRegistry::AliveSnapshots rule).
  auto keep = history_.begin();
  for (auto it = history_.begin(); it != history_.end(); ++it) {
    if (it->expired()) continue;
    ++alive;
    if (keep != it) *keep = std::move(*it);
    ++keep;
  }
  history_.erase(keep, history_.end());
  return alive;
}

ZooStats ModelZoo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ZooStats s = counters_;
  s.registered = entries_.size();
  s.resident_bytes = resident_bytes_;
  s.resident = 0;
  s.pinned = 0;
  s.serves = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->model != nullptr) ++s.resident;
    if (entry->pins > 0) ++s.pinned;
    s.serves += entry->serves.load(std::memory_order_relaxed);
  }
  return s;
}

bool ModelZoo::ModelStats(const std::string& key, ZooModelStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || out == nullptr) return false;
  const ZooEntry& entry = *it->second;
  out->resident = entry.model != nullptr;
  out->bytes = entry.bytes;
  out->pins = entry.pins;
  out->loads = entry.loads;
  out->evictions = entry.evictions;
  out->serves = entry.serves.load(std::memory_order_relaxed);
  out->last_load_micros = entry.last_load_micros;
  return true;
}

ZooPin ModelZoo::MakePinLocked(const std::shared_ptr<ZooEntry>& entry) {
  entry->pins += 1;
  entry->last_used = ++tick_;
  return ZooPin(new ZooHandle(this, entry, entry->model));
}

void ModelZoo::Release(const std::shared_ptr<ZooEntry>& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  DUET_CHECK_GT(entry->pins, 0u);
  entry->pins -= 1;
  // A dropped pin may unblock eviction the budget has been waiting for.
  if (entry->pins == 0) EnforceBudgetLocked();
}

void ModelZoo::EvictLocked(ZooEntry& entry) {
  resident_bytes_ -= entry.bytes;
  entry.model.reset();  // unpinned => this was the last strong ref: unmaps now
  entry.bytes = 0;
  entry.evictions += 1;
  counters_.evictions += 1;
}

void ModelZoo::EnforceBudgetLocked() {
  if (options_.memory_budget_bytes == 0) return;
  while (resident_bytes_ > options_.memory_budget_bytes) {
    ZooEntry* victim = nullptr;
    for (auto& [key, entry] : entries_) {
      if (entry->model == nullptr || entry->pins > 0) continue;
      const bool colder =
          victim == nullptr || entry->last_used < victim->last_used ||
          (entry->last_used == victim->last_used && entry->bytes > victim->bytes);
      if (colder) victim = entry.get();
    }
    if (victim == nullptr) return;  // only pinned models left: wait for pins
    EvictLocked(*victim);
  }
}

}  // namespace duet::serve
