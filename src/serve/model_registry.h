// Versioned model snapshots for zero-downtime serving.
//
// The paper's headline update claim (Sec. IV-A/IV-D: drift is handled by
// cheap fine-tuning, not retraining) only pays off if an update can reach
// production without taking the estimator offline. The registry provides
// the mechanism: every published model is an immutable, refcounted
// *snapshot* — weights, packed-weight caches and compiled plan frozen and
// pinned under one tensor::SnapshotStamp — and the "current" snapshot is a
// single atomically-swapped shared_ptr. Serving dispatches acquire-load the
// pointer once per batch and keep their snapshot alive until the batch
// completes; publishers prepare the next snapshot entirely off to the side
// and swap it in with one release-store. No quiesce, no reader lock, no
// torn state: this is multi-version concurrency for models, the upgrade
// from the PR 2-4 "bump the global version and repack" coherence scheme
// (whose caches a concurrently-training clone would otherwise thrash — see
// the pinning rules in nn/layers.h).
//
// Lifecycle (see docs/serving.md for the full state diagram):
//
//   clone -> fine-tune -> validate -> freeze+prewarm -> swap -> retire
//
// Retirement is automatic: the registry holds only the current snapshot
// strongly; superseded snapshots die when their last in-flight batch (or
// external holder) releases them. AliveSnapshots() observes the live set
// through weak references, which is how tests prove churn leaks nothing.
#ifndef DUET_SERVE_MODEL_REGISTRY_H_
#define DUET_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "artifact/format.h"
#include "core/duet_model.h"
#include "tensor/packed_weights.h"
#include "tensor/tensor.h"

namespace duet::serve {

/// One immutable published model version: the frozen model, a ready
/// estimator adapter over it, and the snapshot stamp its pinned caches are
/// keyed under. Snapshots are shared as shared_ptr<const ModelSnapshot>;
/// the refcount IS the liveness rule (current pointer + in-flight batches).
class ModelSnapshot {
 public:
  ModelSnapshot(std::unique_ptr<core::DuetModel> model, tensor::SnapshotStamp stamp);

  uint64_t id() const { return stamp_.id; }
  const tensor::SnapshotStamp& stamp() const { return stamp_; }
  const core::DuetModel& model() const { return *model_; }
  /// The estimator serving dispatches run on. Estimation entry points are
  /// const-thread-safe (the model is frozen); the non-const return type
  /// mirrors the CardinalityEstimator interface.
  query::CardinalityEstimator& estimator() const { return *estimator_; }

 private:
  std::unique_ptr<core::DuetModel> model_;
  std::unique_ptr<core::DuetEstimator> estimator_;
  tensor::SnapshotStamp stamp_;
};

/// Registry knobs. The registry owns the inference configuration of every
/// snapshot it publishes (backend + plan mode are applied before freezing),
/// so all snapshots of one registry serve under one configuration and a
/// swap never changes numerics-vs-configuration semantics mid-stream.
struct RegistryOptions {
  tensor::WeightBackend backend = tensor::WeightBackend::kDenseF32;
  bool compile_plans = true;
  /// Build the packs / compile the plan BEFORE the swap (one wildcard
  /// estimate on the publisher's thread), so the first post-swap dispatch
  /// never pays the compile latency. Off = lazy build on first traffic.
  bool prewarm = true;
  /// With prewarm on: additionally run one wildcard batch of this size so
  /// the publisher thread's InferenceArena free lists (tensor/tensor.h)
  /// hold recycled activation buffers for batch-shaped forwards — the first
  /// post-swap batch served from this thread then performs zero fresh
  /// activation allocations (asserted via the InferenceArena alloc
  /// counters). The arena is thread-local, so this warms the *publishing*
  /// thread's pools; engine worker threads warm their own on first traffic,
  /// and a swap never invalidates them (pools are keyed by buffer size, not
  /// by model). 0 disables the batch pass (packs/plan prewarm only).
  int64_t prewarm_arena_batch = 64;
};

/// Cumulative registry counters plus point-in-time gauges.
struct RegistryStats {
  uint64_t published = 0;        ///< snapshots published (incl. the initial one)
  uint64_t current_id = 0;       ///< stamp id of the current snapshot
  uint64_t alive = 0;            ///< snapshots still referenced somewhere
  /// Wall time of the last Publish: total (freeze + prewarm + swap) and the
  /// pointer swap alone — the only part concurrent dispatches can even
  /// observe, and the measured "swap latency" docs/serving.md quotes.
  double last_publish_micros = 0.0;
  double last_swap_micros = 0.0;
};

/// Holds the current snapshot and the publish path. Publish/CloneCurrent
/// may be called from any thread (serialized internally); Current() is
/// wait-free for practical purposes — one atomic shared_ptr acquire-load.
class ModelRegistry {
 public:
  /// Publishes `initial` as snapshot #1 (frozen + configured like any other
  /// publish; counts toward `published`).
  explicit ModelRegistry(std::unique_ptr<core::DuetModel> initial,
                         RegistryOptions options = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The snapshot new dispatches should serve on. Callers keep the returned
  /// shared_ptr for the duration of their batch: that is what lets an
  /// in-flight batch finish on its snapshot while a publish swaps the
  /// current pointer underneath it.
  std::shared_ptr<const ModelSnapshot> Current() const;

  /// Freezes `model` (applies the registry backend/plan configuration, pins
  /// its caches under a fresh stamp, optionally prewarms) and atomically
  /// swaps it in as the current snapshot. Returns the published snapshot.
  /// The previous snapshot retires when its last holder releases it.
  std::shared_ptr<const ModelSnapshot> Publish(std::unique_ptr<core::DuetModel> model);

  /// Mutable deep copy of the current snapshot's model — the first step of
  /// every update round (safe concurrently with serving; see
  /// core::CloneModel).
  std::unique_ptr<core::DuetModel> CloneCurrent() const;

  /// Serializes the current snapshot as a snapshot artifact at `path`
  /// (artifact/artifact.h), compiled under the registry backend — i.e. the
  /// Publish-path configuration, so a zoo load of the file serves bitwise
  /// what this registry's dispatches serve. Clean error on I/O failure or
  /// a backbone with no compiled-plan form.
  artifact::ArtifactStatus SaveCurrentArtifact(const std::string& path) const;

  /// Number of snapshots ever published that are still alive (current +
  /// any still pinned by in-flight batches or external holders). Steady
  /// state after traffic drains is exactly 1; more than 1 persistently
  /// means someone leaks snapshot handles.
  uint64_t AliveSnapshots() const;

  RegistryStats stats() const;
  const RegistryOptions& options() const { return options_; }

 private:
  RegistryOptions options_;
  /// Swapped with std::atomic_store_explicit / read with
  /// std::atomic_load_explicit (the C++17 shared_ptr atomic access
  /// functions) — the one acquire-load on the estimate path.
  std::shared_ptr<const ModelSnapshot> current_;
  mutable std::mutex publish_mu_;  ///< serializes publishers, not readers
  /// Weak view of everything ever published, for leak accounting.
  mutable std::mutex history_mu_;
  mutable std::vector<std::weak_ptr<const ModelSnapshot>> history_;
  mutable std::mutex stats_mu_;
  RegistryStats stats_;
};

}  // namespace duet::serve

#endif  // DUET_SERVE_MODEL_REGISTRY_H_
