// Multi-model zoo: string-keyed registry of snapshot artifacts with lazy
// first-touch loading and cost-aware LRU eviction under a global memory
// budget.
//
// The single-model ModelRegistry answers "which version of THE model do
// dispatches serve on"; the zoo answers "which of 1000+ models is resident
// at all". Registration is metadata-only (key -> artifact path) — nothing
// is mapped until the first acquire touches the key, and the artifact
// format makes that touch cheap: one mmap + pointer fixup, no parse, no
// repack (artifact/artifact.h). Under a memory budget the zoo evicts the
// least-recently-used unpinned model (ties broken toward the larger
// mapping — reclaim the most bytes for the same recency) until resident
// bytes fit again.
//
// Pinning: every acquire returns a ZooPin that pins the model for the
// pin's lifetime. Pinned models are NEVER evicted — an in-flight batch
// always finishes on the mapping it resolved — so the budget is a hard
// bound on *evictable* state: resident bytes exceed it only if the pinned
// working set alone exceeds it (then nothing can be evicted and the zoo
// waits for pins to drop). Eviction drops the zoo's strong reference;
// because unpinned means no outstanding handles, the mapping unmaps
// immediately, and a later acquire transparently reloads from the artifact
// path with bitwise-identical estimates (the artifact is the model).
//
// Re-registering a live key is a publish: the path is swapped and the
// resident copy is dropped from the zoo (existing pins keep the superseded
// mapping alive until they drain — the ModelRegistry retirement rule);
// the next acquire loads the new artifact.
//
// Thread-safety: all members are safe to call concurrently. One mutex
// guards the registry state; per-entry load mutexes serialize duplicate
// first-touch loads of the same key without blocking loads of other keys;
// estimation through a held pin takes no zoo locks at all.
#ifndef DUET_SERVE_MODEL_ZOO_H_
#define DUET_SERVE_MODEL_ZOO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "artifact/artifact.h"
#include "query/estimator.h"

namespace duet::serve {

class ModelZoo;
struct ZooEntry;

/// Zoo knobs.
struct ZooOptions {
  /// Global budget over resident artifact mappings; 0 = unbounded (nothing
  /// is ever evicted for space).
  uint64_t memory_budget_bytes = 0;
  /// Verify pack-section checksums on every load (artifact ArtifactLoadOptions;
  /// header/table/meta/plan checksums are always verified).
  bool verify_checksums = true;
};

/// Per-model gauges and counters (ZooStats aggregates across models).
struct ZooModelStats {
  bool resident = false;
  uint64_t bytes = 0;       ///< mapped bytes when resident, else 0
  uint64_t pins = 0;        ///< outstanding ZooPins
  uint64_t loads = 0;       ///< times this key was (re)loaded
  uint64_t evictions = 0;   ///< times this key was evicted / superseded
  uint64_t serves = 0;      ///< queries served through this key's pins
  double last_load_micros = 0.0;  ///< wall time of the most recent load
};

/// Zoo-wide counters plus point-in-time gauges.
struct ZooStats {
  uint64_t registered = 0;
  uint64_t resident = 0;
  uint64_t resident_bytes = 0;
  uint64_t pinned = 0;  ///< models with at least one outstanding pin
  uint64_t loads = 0;
  uint64_t evictions = 0;
  uint64_t serves = 0;
  double last_load_micros = 0.0;
  double total_load_micros = 0.0;
};

/// A pinned acquisition of one model: keeps the mapped artifact alive and
/// the model unevictable until the last ZooPin copy is released. Cheap to
/// copy (shared_ptr semantics via ZooPin); estimation through it is
/// lock-free with respect to the zoo.
class ZooHandle {
 public:
  ~ZooHandle();
  ZooHandle(const ZooHandle&) = delete;
  ZooHandle& operator=(const ZooHandle&) = delete;

  const artifact::ArtifactModel& model() const { return *model_; }
  query::CardinalityEstimator& estimator() const { return model_->estimator(); }
  const std::string& key() const;
  /// Artifact fingerprint — the zoo's analogue of a snapshot id.
  uint64_t fingerprint() const { return model_->fingerprint(); }

  /// Accounts `queries` served through this pin (per-model ServingStats).
  void NoteServed(uint64_t queries) const;

 private:
  friend class ModelZoo;
  ZooHandle(ModelZoo* zoo, std::shared_ptr<ZooEntry> entry,
            std::shared_ptr<const artifact::ArtifactModel> model);

  ModelZoo* zoo_;
  std::shared_ptr<ZooEntry> entry_;
  std::shared_ptr<const artifact::ArtifactModel> model_;
};

/// Shared pin handle: all copies refer to one pinned acquisition; the pin
/// drops when the last copy dies.
using ZooPin = std::shared_ptr<const ZooHandle>;

/// The zoo itself. See the file comment for the full contract.
class ModelZoo {
 public:
  explicit ModelZoo(ZooOptions options = {});
  ~ModelZoo() = default;
  ModelZoo(const ModelZoo&) = delete;
  ModelZoo& operator=(const ModelZoo&) = delete;

  /// Registers (or re-publishes) `key` -> artifact at `path`. Metadata only:
  /// no file access until the first acquire. Re-registering a key drops its
  /// resident copy (outstanding pins keep serving the superseded mapping).
  void Register(const std::string& key, std::string path);

  bool Contains(const std::string& key) const;
  size_t NumRegistered() const;

  /// Acquires a pinned handle for `key`, loading (mmap + validate) on first
  /// touch. On any failure — unknown key, missing/corrupt artifact — returns
  /// the clean error and leaves the zoo untouched: nothing resident, no
  /// counters moved, *out unmodified.
  artifact::ArtifactStatus TryAcquire(const std::string& key, ZooPin* out);

  /// TryAcquire that CHECK-fails on error (for callers that registered the
  /// artifact themselves and treat failure as a bug).
  ZooPin Acquire(const std::string& key);

  /// Evicts `key` if resident and unpinned. Returns false (and does
  /// nothing) when the key is unknown, not resident, or pinned.
  bool Evict(const std::string& key);

  /// Evicts every resident unpinned model.
  void EvictAll();

  uint64_t ResidentBytes() const;
  uint64_t ResidentModels() const;

  /// Loaded artifact models still alive anywhere (resident in the zoo or
  /// held by outstanding/superseded pins) — the leak detector the teardown
  /// tests assert on, mirroring ModelRegistry::AliveSnapshots().
  uint64_t AliveSnapshots() const;

  ZooStats stats() const;
  /// Per-model stats; false if `key` is unknown.
  bool ModelStats(const std::string& key, ZooModelStats* out) const;

  const ZooOptions& options() const { return options_; }

 private:
  friend class ZooHandle;

  /// Pins `entry` (must be resident; caller holds mu_) and wraps a handle.
  ZooPin MakePinLocked(const std::shared_ptr<ZooEntry>& entry);
  /// Drops one pin (ZooHandle destruction) and re-enforces the budget.
  void Release(const std::shared_ptr<ZooEntry>& entry);
  /// Drops `entry`'s resident model; caller holds mu_.
  void EvictLocked(ZooEntry& entry);
  /// Evicts LRU unpinned models until resident bytes fit the budget (or
  /// only pinned models remain); caller holds mu_.
  void EnforceBudgetLocked();

  ZooOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ZooEntry>> entries_;
  uint64_t tick_ = 0;  ///< LRU clock: bumped on every acquire
  uint64_t resident_bytes_ = 0;
  ZooStats counters_;  ///< loads/evictions/serves + load timings (under mu_)
  /// Weak view of every model ever loaded, for AliveSnapshots().
  mutable std::vector<std::weak_ptr<const artifact::ArtifactModel>> history_;
};

}  // namespace duet::serve

#endif  // DUET_SERVE_MODEL_ZOO_H_
