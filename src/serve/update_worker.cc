#include "serve/update_worker.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace duet::serve {

UpdateWorker::UpdateWorker(ModelRegistry& registry, UpdateWorkerOptions options)
    : registry_(registry), options_(options) {
  DUET_CHECK_GE(options_.min_feedback, 2);
  DUET_CHECK_GE(options_.max_buffer, options_.min_feedback);
  DUET_CHECK_GE(options_.holdout_every, 2);
  // A round drains >= min_feedback pairs; requiring at least one full
  // holdout stride guarantees the validation slice is never empty (an empty
  // holdout would fail the gate and silently reject every round).
  DUET_CHECK_GE(options_.min_feedback, options_.holdout_every);
}

UpdateWorker::~UpdateWorker() { Stop(); }

void UpdateWorker::AddFeedback(query::Query query, double true_cardinality) {
  if (!(true_cardinality > 0.0)) true_cardinality = 0.0;  // NaN/negative -> 0
  // Saturate +inf / out-of-range counts: casting a double >= 2^64 to
  // uint64_t is undefined behavior. 2^63 is exactly representable.
  constexpr double kMaxCardinality = 9223372036854775808.0;
  if (true_cardinality >= kMaxCardinality) true_cardinality = kMaxCardinality;
  query::LabeledQuery pair;
  pair.query = std::move(query);
  pair.cardinality = static_cast<uint64_t>(true_cardinality);
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    buffer_.push_back(std::move(pair));
    if (static_cast<int64_t>(buffer_.size()) > options_.max_buffer) {
      buffer_.pop_front();
      dropped = true;
    }
  }
  buffer_cv_.notify_one();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.feedback_received;
  if (dropped) ++stats_.feedback_dropped;
}

bool UpdateWorker::RunOnce() { return RunRound(); }

bool UpdateWorker::RunRound() {
  // One round at a time: RunOnce callers and the background loop share the
  // clone-and-tune pipeline (and the trainer is not reentrant).
  std::lock_guard<std::mutex> round_lock(round_mu_);

  std::vector<query::LabeledQuery> drained;
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (static_cast<int64_t>(buffer_.size()) < options_.min_feedback) return false;
    drained.assign(buffer_.begin(), buffer_.end());
    buffer_.clear();
  }

  // Deterministic split: every holdout_every-th pair validates, the rest
  // tune. The holdout is data the tuning never saw, which is what lets the
  // gate catch a poisoned or unrepresentative feedback batch.
  query::Workload train, holdout;
  for (size_t i = 0; i < drained.size(); ++i) {
    if (i % static_cast<size_t>(options_.holdout_every) ==
        static_cast<size_t>(options_.holdout_every) - 1) {
      holdout.push_back(std::move(drained[i]));
    } else {
      train.push_back(std::move(drained[i]));
    }
  }

  Timer round_timer;
  const std::shared_ptr<const ModelSnapshot> base = registry_.Current();
  core::OnlineUpdateResult result =
      core::CloneAndFineTune(base->model(), train, holdout, options_.update);
  if (result.accepted) {
    registry_.Publish(std::move(result.model));
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.rounds;
  if (result.accepted) {
    ++stats_.published;
  } else if (result.report.collected.empty()) {
    ++stats_.skipped;  // nothing exceeded the threshold: candidate == base
  } else {
    ++stats_.rolled_back;
  }
  stats_.last_holdout_before = result.holdout_before;
  stats_.last_holdout_after = result.holdout_after;
  stats_.last_round_seconds = round_timer.Seconds();
  return true;
}

void UpdateWorker::Start() {
  std::lock_guard<std::mutex> lock(buffer_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void UpdateWorker::Stop() {
  std::thread stopped;
  {
    // Claim the thread under the lock so a concurrent Stop (e.g. explicit
    // Stop racing the destructor) cannot join it twice.
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    stopped = std::move(thread_);
  }
  buffer_cv_.notify_all();
  stopped.join();
  std::lock_guard<std::mutex> lock(buffer_mu_);
  stop_ = false;
}

void UpdateWorker::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(buffer_mu_);
      buffer_cv_.wait(lock, [this] {
        return stop_ || static_cast<int64_t>(buffer_.size()) >= options_.min_feedback;
      });
      if (stop_) return;
    }
    RunRound();
  }
}

int64_t UpdateWorker::pending_feedback() const {
  std::lock_guard<std::mutex> lock(buffer_mu_);
  return static_cast<int64_t>(buffer_.size());
}

UpdateWorkerStats UpdateWorker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace duet::serve
