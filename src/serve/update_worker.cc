#include "serve/update_worker.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"

namespace duet::serve {

UpdateWorker::UpdateWorker(ModelRegistry& registry, UpdateWorkerOptions options)
    : registry_(registry), options_(options) {
  DUET_CHECK_GE(options_.min_feedback, 2);
  DUET_CHECK_GE(options_.max_buffer, options_.min_feedback);
  DUET_CHECK_GE(options_.holdout_every, 2);
  // A round drains >= min_feedback pairs; requiring at least one full
  // holdout stride guarantees the validation slice is never empty (an empty
  // holdout would fail the gate and silently reject every round).
  DUET_CHECK_GE(options_.min_feedback, options_.holdout_every);
  DUET_CHECK_GE(options_.publish_retries, 0);
  DUET_CHECK_GE(options_.backoff_initial_us, 0);
  DUET_CHECK_GE(options_.backoff_max_us, options_.backoff_initial_us);
  DUET_CHECK_GE(options_.max_quarantine, 0);
}

UpdateWorker::~UpdateWorker() { Stop(); }

void UpdateWorker::AddFeedback(query::Query query, double true_cardinality) {
  if (!(true_cardinality > 0.0)) true_cardinality = 0.0;  // NaN/negative -> 0
  // Saturate +inf / out-of-range counts: casting a double >= 2^64 to
  // uint64_t is undefined behavior. 2^63 is exactly representable.
  constexpr double kMaxCardinality = 9223372036854775808.0;
  if (true_cardinality >= kMaxCardinality) true_cardinality = kMaxCardinality;
  query::LabeledQuery pair;
  pair.query = std::move(query);
  pair.cardinality = static_cast<uint64_t>(true_cardinality);
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    buffer_.push_back(std::move(pair));
    if (static_cast<int64_t>(buffer_.size()) > options_.max_buffer) {
      buffer_.pop_front();
      dropped = true;
    }
  }
  buffer_cv_.notify_one();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.feedback_received;
  if (dropped) ++stats_.feedback_dropped;
}

bool UpdateWorker::RunOnce() { return RunRound(); }

bool UpdateWorker::RunRound() {
  // One round at a time: RunOnce callers and the background loop share the
  // clone-and-tune pipeline (and the trainer is not reentrant).
  std::lock_guard<std::mutex> round_lock(round_mu_);

  std::vector<query::LabeledQuery> drained;
  {
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (static_cast<int64_t>(buffer_.size()) < options_.min_feedback) return false;
    drained.assign(buffer_.begin(), buffer_.end());
    buffer_.clear();
  }

  // Deterministic split: every holdout_every-th pair validates, the rest
  // tune. The holdout is data the tuning never saw, which is what lets the
  // gate catch a poisoned or unrepresentative feedback batch.
  query::Workload train, holdout;
  for (size_t i = 0; i < drained.size(); ++i) {
    if (i % static_cast<size_t>(options_.holdout_every) ==
        static_cast<size_t>(options_.holdout_every) - 1) {
      holdout.push_back(std::move(drained[i]));
    } else {
      train.push_back(std::move(drained[i]));
    }
  }

  Timer round_timer;
  const std::shared_ptr<const ModelSnapshot> base = registry_.Current();
  // Transient clone accounting (stats().clone_peak_bytes): the round owns
  // the fine-tune candidate for its whole duration, plus one more clone per
  // publish attempt while that Publish is in flight.
  const uint64_t model_bytes =
      static_cast<uint64_t>(base->model().NumParams()) * sizeof(float);
  uint64_t round_clone_peak = model_bytes;  // the candidate
  core::OnlineUpdateResult result =
      core::CloneAndFineTune(base->model(), train, holdout, options_.update);

  // Publish with bounded exponential backoff + jitter: Publish can throw
  // (pack/plan compilation, allocation), and a throw consumes the model it
  // was handed, so each attempt gets its own clone of the candidate. After
  // the retry budget the candidate is abandoned — the registry keeps
  // serving the previous snapshot and the next round starts fresh.
  bool published = false;
  uint64_t attempt_failures = 0;
  if (result.accepted) {
    int64_t backoff_us = options_.backoff_initial_us;
    for (int64_t attempt = 0; attempt <= options_.publish_retries; ++attempt) {
      try {
        round_clone_peak = std::max(round_clone_peak, 2 * model_bytes);
        registry_.Publish(core::CloneModel(*result.model));
        published = true;
        break;
      } catch (const std::exception&) {
        ++attempt_failures;
        if (attempt == options_.publish_retries) break;
        const double jitter = 0.5 + backoff_rng_.UniformDouble();  // [0.5, 1.5)
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<int64_t>(static_cast<double>(backoff_us) * jitter)));
        backoff_us = std::min(backoff_us * 2, options_.backoff_max_us);
      }
    }
  }

  // A gate-rejected round with a non-empty collection means the feedback
  // batch itself is suspect (poisoned labels, unrepresentative skew).
  // Quarantine its pairs instead of retrying or silently dropping them.
  const bool poisoned = !result.accepted && !result.report.collected.empty();
  uint64_t quarantined_pairs = 0;
  if (poisoned) {
    std::lock_guard<std::mutex> qlock(quarantine_mu_);
    for (query::Workload* part : {&train, &holdout}) {
      for (query::LabeledQuery& lq : *part) {
        quarantine_.push_back(std::move(lq));
        ++quarantined_pairs;
      }
    }
    while (static_cast<int64_t>(quarantine_.size()) > options_.max_quarantine) {
      quarantine_.pop_front();
    }
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.rounds;
  stats_.publish_failures += attempt_failures;
  if (published) {
    ++stats_.published;
  } else if (result.accepted) {
    ++stats_.publish_abandoned;
  } else if (result.report.collected.empty()) {
    ++stats_.skipped;  // nothing exceeded the threshold: candidate == base
  } else {
    ++stats_.rolled_back;
  }
  if (poisoned) {
    ++stats_.quarantined_rounds;
    stats_.feedback_quarantined += quarantined_pairs;
  }
  stats_.last_holdout_before = result.holdout_before;
  stats_.last_holdout_after = result.holdout_after;
  stats_.last_round_seconds = round_timer.Seconds();
  stats_.clone_peak_bytes = std::max(stats_.clone_peak_bytes, round_clone_peak);
  return true;
}

int64_t UpdateWorker::quarantined_feedback() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return static_cast<int64_t>(quarantine_.size());
}

query::Workload UpdateWorker::DrainQuarantine() {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  query::Workload out(std::make_move_iterator(quarantine_.begin()),
                      std::make_move_iterator(quarantine_.end()));
  quarantine_.clear();
  return out;
}

void UpdateWorker::Start() {
  std::lock_guard<std::mutex> lock(buffer_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void UpdateWorker::Stop() {
  std::thread stopped;
  {
    // Claim the thread under the lock so a concurrent Stop (e.g. explicit
    // Stop racing the destructor) cannot join it twice.
    std::lock_guard<std::mutex> lock(buffer_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    stopped = std::move(thread_);
  }
  buffer_cv_.notify_all();
  stopped.join();
  std::lock_guard<std::mutex> lock(buffer_mu_);
  stop_ = false;
}

void UpdateWorker::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(buffer_mu_);
      buffer_cv_.wait(lock, [this] {
        return stop_ || static_cast<int64_t>(buffer_.size()) >= options_.min_feedback;
      });
      if (stop_) return;
    }
    RunRound();
  }
}

int64_t UpdateWorker::pending_feedback() const {
  std::lock_guard<std::mutex> lock(buffer_mu_);
  return static_cast<int64_t>(buffer_.size());
}

UpdateWorkerStats UpdateWorker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace duet::serve
