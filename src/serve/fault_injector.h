// Fault-injection harness for the serving resilience layer.
//
// A stalled or crashed estimate is worse than an approximate one: the query
// optimizer can always fall back to classical selectivity math, so every
// failure in the estimation stack must degrade — never hang, never abort.
// Proving that requires *forcing* the failures, which is what this harness
// does: test code arms a FaultPoint with a trigger budget, and the
// instrumented production site (arena allocation, weight packing, plan
// compilation, checkpoint writes, snapshot publication, fine-tune rounds)
// consults the injector and throws serve::FaultInjectedError when its
// point fires. The `ctest -L resilience` suite drives every fault class
// through the serving stack and asserts a flagged degraded answer or a
// clean error each time (docs/resilience.md §6 has the fault matrix).
//
// Cost model: every instrumented site performs ONE relaxed atomic load of
// a global armed-point counter when nothing is armed — unmeasurable next
// to the model math around it. For builds where even that is unwanted,
// configure with -DDUET_FAULT_INJECTION=OFF: the macro below compiles every
// hook to nothing and the class degenerates to constant-false inlines, so
// release binaries carry no injection surface at all.
//
// Thread-safety: all members are static and atomic; Arm/Disarm/ShouldFail
// may race freely (a trigger is consumed exactly once).
#ifndef DUET_SERVE_FAULT_INJECTOR_H_
#define DUET_SERVE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace duet::serve {

/// Instrumented failure sites, one per fault class the resilience suite
/// exercises. Keep docs/resilience.md §6 in sync when adding a point.
enum class FaultPoint : int {
  kNeuralForward = 0,   ///< serving dispatch: the neural estimate call throws
  kAllocation = 1,      ///< tensor::InferenceArena buffer acquisition fails
  kPackWeights = 2,     ///< tensor::PackWeights (backend repack) fails
  kPlanCompile = 3,     ///< nn::GetOrCompilePlan compilation fails
  kCheckpointWrite = 4, ///< core::SaveModuleFile tears the file mid-write
  kPublish = 5,         ///< serve::ModelRegistry::Publish fails
  kFineTuneDiverge = 6, ///< core::CloneAndFineTune candidate diverges (NaN)
  kNetSnapshotStream = 7,  ///< net::NetServer tears a snapshot stream mid-transfer
  kNumFaultPoints = 8,
};

/// The exception every armed fault point throws. Derives from
/// std::runtime_error so un-instrumented catch sites treat it like any
/// other operational failure — which is the point: injected faults must
/// flow through exactly the production error paths.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what) : std::runtime_error(what) {}
};

#if defined(DUET_FAULT_INJECTION_DISABLED)

/// Compile-time no-op variant (-DDUET_FAULT_INJECTION=OFF): every method
/// is a constant-foldable inline, so instrumented sites emit no code.
class FaultInjector {
 public:
  static constexpr bool Enabled() { return false; }
  static void Arm(FaultPoint, uint64_t, uint64_t = 0) {}
  static void Disarm(FaultPoint) {}
  static void DisarmAll() {}
  static constexpr bool ShouldFail(FaultPoint) { return false; }
  static void MaybeThrow(FaultPoint, const char*) {}
  static constexpr uint64_t fired(FaultPoint) { return 0; }
};

#else

/// Process-wide fault-point registry. Arm(point, count, skip) makes the
/// next `skip` triggers of `point` pass and the `count` after them fail;
/// once the budget is spent the point disarms itself, so a test that arms
/// 3 failures observes exactly 3 degraded answers and then recovery.
class FaultInjector {
 public:
  /// Whether injection support is compiled in (this variant: yes).
  static constexpr bool Enabled() { return true; }

  /// Arms `point`: after `skip` passes, the next `count` triggers fail.
  static void Arm(FaultPoint point, uint64_t count, uint64_t skip = 0);

  /// Disarms one point (pending budget discarded).
  static void Disarm(FaultPoint point);

  /// Disarms every point. Tests call this in SetUp/TearDown so a failed
  /// assertion can never leak armed faults into the next test.
  static void DisarmAll();

  /// Consumes one trigger of `point`; true iff the site must fail now.
  /// One relaxed load when nothing is armed anywhere.
  static bool ShouldFail(FaultPoint point);

  /// Convenience for throwing sites: ShouldFail -> throw FaultInjectedError.
  static void MaybeThrow(FaultPoint point, const char* what) {
    if (ShouldFail(point)) throw FaultInjectedError(what);
  }

  /// Cumulative times `point` actually fired (for test assertions).
  static uint64_t fired(FaultPoint point);
};

#endif  // DUET_FAULT_INJECTION_DISABLED

}  // namespace duet::serve

#endif  // DUET_SERVE_FAULT_INJECTOR_H_
