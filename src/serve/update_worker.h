// Background fine-tune worker: turns served-traffic feedback into
// published model snapshots.
//
// This is the paper's deployment loop (Sec. IV-A: collect badly-estimated
// queries during actual use, fine-tune on them) run *online*: a feedback
// buffer accumulates (query, observed true cardinality) pairs reported by
// the execution engine after it runs served queries; once enough pairs are
// pending, the worker clones the current snapshot, fine-tunes the clone on
// the feedback (core::CloneAndFineTune), validates the candidate's median
// Q-error on a holdout slice of pairs the tuning never saw, and either
// publishes the candidate through the ModelRegistry (atomic hot swap — the
// serving path never pauses) or rolls it back. Serving and adaptation thus
// run on decoupled model instances that synchronize only at snapshot
// publication.
//
// Threading: AddFeedback is called on the serving path (cheap: one mutex'd
// deque push). The round itself — clone, train, validate — runs either on
// the caller's thread (RunOnce, used by tests and deterministic examples)
// or on the worker's own background thread (Start/Stop). Rounds are
// serialized; the registry handles publish-side synchronization.
#ifndef DUET_SERVE_UPDATE_WORKER_H_
#define DUET_SERVE_UPDATE_WORKER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "common/rng.h"
#include "core/finetune.h"
#include "query/query.h"
#include "serve/model_registry.h"

namespace duet::serve {

/// Update-worker knobs.
struct UpdateWorkerOptions {
  /// A round starts once this many feedback pairs are pending. Must be
  /// >= holdout_every so every round's validation holdout is non-empty.
  int64_t min_feedback = 64;
  /// Feedback buffer cap: beyond it the oldest pairs are dropped (counted
  /// in stats().feedback_dropped) so a stalled worker cannot grow memory
  /// without bound.
  int64_t max_buffer = 8192;
  /// Every `holdout_every`-th drained pair goes to the validation holdout
  /// instead of the tuning set (deterministic split, so tests can reason
  /// about which pairs train and which validate). Must be >= 2.
  int64_t holdout_every = 4;
  /// A failed Publish (it can throw: pack/plan compilation, allocation) is
  /// retried up to this many times with bounded exponential backoff and
  /// jitter before the round's candidate is abandoned (resilience.md §5).
  int64_t publish_retries = 3;
  /// First retry delay; doubles per retry up to backoff_max_us. Jittered by
  /// a deterministic [0.5, 1.5) factor so synchronized workers desynchronize.
  int64_t backoff_initial_us = 1000;
  int64_t backoff_max_us = 100 * 1000;
  /// Cap on the quarantine buffer holding pairs from gate-rejected rounds
  /// (oldest dropped beyond it).
  int64_t max_quarantine = 4096;
  /// Clone-and-tune knobs, including the validation gate
  /// (core::OnlineUpdateOptions::max_regression).
  core::OnlineUpdateOptions update;
};

/// Cumulative worker counters (monotone since construction).
struct UpdateWorkerStats {
  uint64_t feedback_received = 0;
  uint64_t feedback_dropped = 0;  ///< overflowed pairs (oldest-first)
  uint64_t rounds = 0;            ///< clone-and-tune rounds run
  uint64_t published = 0;         ///< rounds whose candidate passed the gate
  uint64_t rolled_back = 0;       ///< rounds whose candidate failed the gate
  uint64_t skipped = 0;           ///< rounds where nothing exceeded the
                                  ///< collection threshold (candidate == base)
  uint64_t publish_failures = 0;  ///< individual Publish attempts that threw
  uint64_t publish_abandoned = 0; ///< accepted candidates dropped after every
                                  ///< retry failed
  uint64_t quarantined_rounds = 0;    ///< gate-rejected rounds quarantined
  uint64_t feedback_quarantined = 0;  ///< pairs moved into quarantine
  /// Holdout median Q-error of the last round's candidate before/after
  /// tuning (the gate's inputs).
  double last_holdout_before = 0.0;
  double last_holdout_after = 0.0;
  double last_round_seconds = 0.0;
  /// Peak transient clone memory any single round has held: parameter bytes
  /// of round-owned model copies alive at once (the fine-tune candidate,
  /// plus one per-attempt publish clone while a Publish is in flight). With
  /// the direct-copy core::CloneModel this is 2x the model's parameter
  /// bytes at publish and 1x otherwise; the old serialize/deserialize clone
  /// path added another full serialized image on top of each copy.
  uint64_t clone_peak_bytes = 0;
};

/// Owns the feedback buffer and the background round loop. Destruction
/// stops the background thread (if started) after its current round.
class UpdateWorker {
 public:
  explicit UpdateWorker(ModelRegistry& registry, UpdateWorkerOptions options = {});
  ~UpdateWorker();

  UpdateWorker(const UpdateWorker&) = delete;
  UpdateWorker& operator=(const UpdateWorker&) = delete;

  /// Reports one observed (query, true cardinality) pair from served
  /// traffic. Thread-safe and cheap; negative/NaN cardinalities are clamped
  /// to 0. This is what ServingEngine::ReportObserved feeds.
  void AddFeedback(query::Query query, double true_cardinality);

  /// Runs one round on the caller's thread if at least min_feedback pairs
  /// are pending (returns false otherwise — nothing drained). Also callable
  /// with the background thread running; rounds are serialized.
  bool RunOnce();

  /// Starts / stops the background thread that runs rounds whenever enough
  /// feedback is pending. Idempotent.
  void Start();
  void Stop();

  int64_t pending_feedback() const;
  UpdateWorkerStats stats() const;
  const UpdateWorkerOptions& options() const { return options_; }

  /// Pairs currently held in the poisoned-round quarantine.
  int64_t quarantined_feedback() const;

  /// Removes and returns the quarantined pairs (offline inspection /
  /// debugging of what poisoned a round). Oldest first.
  query::Workload DrainQuarantine();

 private:
  void Loop();
  /// Drains the buffer (if >= min_feedback) into train/holdout and runs one
  /// clone-and-tune round. Serialized by round_mu_.
  bool RunRound();

  ModelRegistry& registry_;
  UpdateWorkerOptions options_;

  mutable std::mutex buffer_mu_;
  std::condition_variable buffer_cv_;
  std::deque<query::LabeledQuery> buffer_;
  bool stop_ = false;

  std::mutex round_mu_;  ///< serializes RunOnce vs the background loop

  /// Pairs from gate-rejected (poisoned) rounds: kept out of the live
  /// buffer so the same batch cannot poison the next round, but retained —
  /// bounded — for offline inspection.
  mutable std::mutex quarantine_mu_;
  std::deque<query::LabeledQuery> quarantine_;

  /// Jitter source for publish backoff; guarded by round_mu_ (only round
  /// code touches it). Fixed seed: deterministic tests, and desynchronizing
  /// *distinct* workers is handled by each worker's own sequence.
  Rng backoff_rng_{0xd0e7};

  mutable std::mutex stats_mu_;
  UpdateWorkerStats stats_;

  std::thread thread_;  ///< joinable iff the background loop is running
};

}  // namespace duet::serve

#endif  // DUET_SERVE_UPDATE_WORKER_H_
