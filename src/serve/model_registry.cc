#include "serve/model_registry.h"

#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "artifact/artifact.h"
#include "core/finetune.h"
#include "serve/fault_injector.h"

namespace duet::serve {

ModelSnapshot::ModelSnapshot(std::unique_ptr<core::DuetModel> model,
                             tensor::SnapshotStamp stamp)
    : model_(std::move(model)), stamp_(stamp) {
  DUET_CHECK(model_ != nullptr);
  estimator_ = std::make_unique<core::DuetEstimator>(*model_);
}

ModelRegistry::ModelRegistry(std::unique_ptr<core::DuetModel> initial,
                             RegistryOptions options)
    : options_(options) {
  Publish(std::move(initial));
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Current() const {
  // The one acquire-load on the estimate path: pairs with the release store
  // in Publish, so a dispatch that sees the new pointer also sees the fully
  // frozen, prewarmed snapshot behind it.
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Publish(
    std::unique_ptr<core::DuetModel> model) {
  DUET_CHECK(model != nullptr);
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  Timer publish_timer;

  // Fault point: publication can fail for real (pack/plan compilation below
  // throws, allocation fails). Everything that can throw runs before the
  // snapshot becomes visible, so a failed Publish leaves the previous
  // snapshot serving and the registry state untouched — callers (the update
  // worker) retry with backoff.
  FaultInjector::MaybeThrow(FaultPoint::kPublish, "injected publish failure");

  // Configure-then-freeze, all before the snapshot is visible: the
  // registry's backend/plan choice is applied while this thread is the
  // model's sole user, then the caches are pinned so the fine-tune worker's
  // version bumps (or any other model's training) can never invalidate
  // them.
  model->SetInferenceBackend(options_.backend);
  model->SetPlanEnabled(options_.compile_plans);
  const tensor::SnapshotStamp stamp = tensor::AcquireSnapshotStamp();
  model->FreezeInferenceCaches(stamp);
  if (options_.prewarm) {
    // One wildcard estimate builds the packs and compiles the plan on the
    // publisher's thread, so post-swap traffic starts on warm caches.
    model->EstimateSelectivity(query::Query{});
    if (options_.prewarm_arena_batch > 0) {
      // Arena warm-up: one representative-shape batch pass populates this
      // thread's InferenceArena free lists with batch-sized activation
      // buffers before the swap, so the first post-swap batch served from
      // this thread allocates nothing (see RegistryOptions).
      const std::vector<query::Query> warm(
          static_cast<size_t>(options_.prewarm_arena_batch), query::Query{});
      model->EstimateSelectivityBatch(warm);
    }
  }
  auto snapshot = std::make_shared<const ModelSnapshot>(std::move(model), stamp);
  {
    std::lock_guard<std::mutex> history_lock(history_mu_);
    history_.push_back(snapshot);
  }

  Timer swap_timer;
  std::atomic_store_explicit(&current_, std::shared_ptr<const ModelSnapshot>(snapshot),
                             std::memory_order_release);
  const double swap_micros = swap_timer.Micros();

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  ++stats_.published;
  stats_.current_id = stamp.id;
  stats_.last_publish_micros = publish_timer.Micros();
  stats_.last_swap_micros = swap_micros;
  return snapshot;
}

std::unique_ptr<core::DuetModel> ModelRegistry::CloneCurrent() const {
  const std::shared_ptr<const ModelSnapshot> snapshot = Current();
  return core::CloneModel(snapshot->model());
}

artifact::ArtifactStatus ModelRegistry::SaveCurrentArtifact(const std::string& path) const {
  // The pin keeps the snapshot alive through serialization; writing is
  // read-only on the frozen model, so concurrent dispatches (and even a
  // concurrent publish) stay undisturbed.
  const std::shared_ptr<const ModelSnapshot> snapshot = Current();
  return artifact::WriteArtifact(path, snapshot->model(), options_.backend);
}

uint64_t ModelRegistry::AliveSnapshots() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  uint64_t alive = 0;
  // Prune expired entries while counting so churny workloads do not grow
  // the history without bound. Skip the self-assignment when nothing has
  // been pruned yet: moving a weak_ptr onto itself empties it.
  auto out = history_.begin();
  for (auto it = history_.begin(); it != history_.end(); ++it) {
    if (it->expired()) continue;
    ++alive;
    if (out != it) *out = std::move(*it);
    ++out;
  }
  history_.erase(out, history_.end());
  return alive;
}

RegistryStats ModelRegistry::stats() const {
  RegistryStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot = stats_;
  }
  snapshot.alive = AliveSnapshots();
  return snapshot;
}

}  // namespace duet::serve
