#include "serve/fault_injector.h"

#if !defined(DUET_FAULT_INJECTION_DISABLED)

#include <array>

namespace duet::serve {

namespace {

struct PointState {
  std::atomic<uint64_t> skip{0};       // triggers to pass before failing
  std::atomic<uint64_t> remaining{0};  // failures left in the armed budget
  std::atomic<uint64_t> fired{0};      // cumulative failures delivered
};

constexpr size_t kNumPoints = static_cast<size_t>(FaultPoint::kNumFaultPoints);

std::array<PointState, kNumPoints>& Points() {
  static std::array<PointState, kNumPoints> points;
  return points;
}

/// Number of points with a nonzero budget: the one relaxed load every
/// instrumented site pays when nothing is armed.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> count{0};
  return count;
}

PointState& State(FaultPoint point) { return Points()[static_cast<size_t>(point)]; }

}  // namespace

void FaultInjector::Arm(FaultPoint point, uint64_t count, uint64_t skip) {
  PointState& s = State(point);
  const bool was_armed = s.remaining.load(std::memory_order_relaxed) > 0;
  s.skip.store(skip, std::memory_order_relaxed);
  s.remaining.store(count, std::memory_order_relaxed);
  if (!was_armed && count > 0) ArmedCount().fetch_add(1, std::memory_order_relaxed);
  if (was_armed && count == 0) ArmedCount().fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm(FaultPoint point) { Arm(point, 0, 0); }

void FaultInjector::DisarmAll() {
  for (size_t i = 0; i < kNumPoints; ++i) Disarm(static_cast<FaultPoint>(i));
}

bool FaultInjector::ShouldFail(FaultPoint point) {
  // Fast path: nothing armed anywhere in the process.
  if (ArmedCount().load(std::memory_order_relaxed) == 0) return false;
  PointState& s = State(point);
  if (s.remaining.load(std::memory_order_relaxed) == 0) return false;
  // Consume one skip credit if any are left.
  uint64_t skip = s.skip.load(std::memory_order_relaxed);
  while (skip > 0) {
    if (s.skip.compare_exchange_weak(skip, skip - 1, std::memory_order_relaxed)) {
      return false;
    }
  }
  // Consume one failure credit; the thread that takes the last one disarms.
  uint64_t remaining = s.remaining.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (s.remaining.compare_exchange_weak(remaining, remaining - 1,
                                          std::memory_order_relaxed)) {
      s.fired.fetch_add(1, std::memory_order_relaxed);
      if (remaining == 1) ArmedCount().fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

uint64_t FaultInjector::fired(FaultPoint point) {
  return State(point).fired.load(std::memory_order_relaxed);
}

}  // namespace duet::serve

#endif  // !DUET_FAULT_INJECTION_DISABLED
