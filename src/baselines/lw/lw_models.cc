#include "baselines/lw/lw_models.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace duet::baselines {

using tensor::Tensor;

LwFeaturizer::LwFeaturizer(const data::Table& table)
    : table_(table), num_columns_(table.num_columns()) {}

void LwFeaturizer::Encode(const query::Query& query, float* dst) const {
  const std::vector<query::CodeRange> ranges = query.PerColumnRanges(table_);
  std::vector<bool> constrained(static_cast<size_t>(num_columns_), false);
  for (const query::Predicate& p : query.predicates) {
    constrained[static_cast<size_t>(p.col)] = true;
  }
  for (int64_t c = 0; c < num_columns_; ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    const float ndv = static_cast<float>(table_.column(static_cast<int>(c)).ndv());
    dst[3 * c + 0] = static_cast<float>(r.lo) / ndv;
    dst[3 * c + 1] = static_cast<float>(std::max(r.hi, r.lo)) / ndv;
    dst[3 * c + 2] = constrained[static_cast<size_t>(c)] ? 1.0f : 0.0f;
  }
}

ml::Matrix LwFeaturizer::EncodeWorkload(const std::vector<query::Query>& queries) const {
  ml::Matrix m;
  m.rows = static_cast<int64_t>(queries.size());
  m.cols = width();
  m.data.assign(static_cast<size_t>(m.rows * m.cols), 0.0f);
  for (int64_t r = 0; r < m.rows; ++r) {
    Encode(queries[static_cast<size_t>(r)], m.data.data() + r * m.cols);
  }
  return m;
}

float LwLogSelectivity(uint64_t cardinality, int64_t num_rows) {
  DUET_CHECK_GT(num_rows, 0);
  const double card = std::max<double>(1.0, static_cast<double>(cardinality));
  return static_cast<float>(std::log2(card / static_cast<double>(num_rows)));
}

// ---------------------------------------------------------------------------
// LW-XGB
// ---------------------------------------------------------------------------

LwXgbEstimator::LwXgbEstimator(const data::Table& table, LwXgbOptions options)
    : table_(table), featurizer_(table), gbdt_(options.gbdt) {}

void LwXgbEstimator::Train(const query::Workload& workload) {
  DUET_CHECK(!workload.empty());
  std::vector<query::Query> queries;
  std::vector<float> targets;
  queries.reserve(workload.size());
  targets.reserve(workload.size());
  for (const query::LabeledQuery& lq : workload) {
    queries.push_back(lq.query);
    targets.push_back(LwLogSelectivity(lq.cardinality, table_.num_rows()));
  }
  gbdt_.Fit(featurizer_.EncodeWorkload(queries), targets);
}

double LwXgbEstimator::EstimateSelectivity(const query::Query& query) {
  DUET_CHECK_GT(gbdt_.num_trees(), 0) << "LW-XGB used before Train()";
  std::vector<float> row(static_cast<size_t>(featurizer_.width()));
  featurizer_.Encode(query, row.data());
  const double log_sel = static_cast<double>(gbdt_.Predict(row.data()));
  return std::clamp(std::exp2(log_sel), 0.0, 1.0);
}

// ---------------------------------------------------------------------------
// LW-NN
// ---------------------------------------------------------------------------

LwNnEstimator::LwNnEstimator(const data::Table& table, LwNnOptions options)
    : table_(table), featurizer_(table), options_(options) {
  Rng rng(options_.seed);
  std::vector<int64_t> sizes;
  sizes.push_back(featurizer_.width());
  for (int64_t h : options_.hidden_sizes) sizes.push_back(h);
  sizes.push_back(1);
  mlp_ = std::make_unique<nn::Mlp>(sizes, rng);
  RegisterChild(*mlp_);
}

std::vector<double> LwNnEstimator::Train(const query::Workload& workload) {
  DUET_CHECK(!workload.empty());
  const int64_t n = static_cast<int64_t>(workload.size());
  const int64_t width = featurizer_.width();
  std::vector<float> features(static_cast<size_t>(n * width));
  std::vector<float> targets(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    featurizer_.Encode(workload[static_cast<size_t>(i)].query,
                       features.data() + i * width);
    targets[static_cast<size_t>(i)] =
        LwLogSelectivity(workload[static_cast<size_t>(i)].cardinality, table_.num_rows());
  }

  tensor::Adam opt(parameters(), options_.learning_rate);
  Rng rng(options_.seed + 1);
  std::vector<double> epoch_mse;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(n));
    double se = 0.0;
    int64_t seen = 0;
    for (int64_t start = 0; start < n; start += options_.batch_size) {
      const int64_t bs = std::min(options_.batch_size, n - start);
      Tensor x = Tensor::Zeros({bs, width});
      Tensor y = Tensor::Zeros({bs, 1});
      for (int64_t b = 0; b < bs; ++b) {
        const uint32_t src = perm[static_cast<size_t>(start + b)];
        std::copy_n(features.data() + static_cast<int64_t>(src) * width, width,
                    x.data() + b * width);
        y.data()[b] = targets[src];
      }
      opt.ZeroGrad();
      const Tensor diff = tensor::Sub(mlp_->Forward(x), y);
      Tensor loss = tensor::MeanAll(tensor::Mul(diff, diff));
      loss.Backward();
      opt.Step();
      se += static_cast<double>(loss.item()) * static_cast<double>(bs);
      seen += bs;
    }
    epoch_mse.push_back(se / static_cast<double>(seen));
  }
  return epoch_mse;
}

double LwNnEstimator::EstimateSelectivity(const query::Query& query) {
  tensor::NoGradGuard no_grad;
  Tensor x = Tensor::Zeros({1, featurizer_.width()});
  featurizer_.Encode(query, x.data());
  const double log_sel = static_cast<double>(mlp_->Forward(x).item());
  return std::clamp(std::exp2(log_sel), 0.0, 1.0);
}

}  // namespace duet::baselines
