// LW-XGB and LW-NN: lightweight query-driven selectivity models
// (Dutt et al., VLDB 2019; cited as [11] in the paper's introduction).
//
// Both featurize a conjunctive range query as, per column, the normalized
// code interval [lo, hi) plus a constrained flag, and regress
// log2(selectivity) — LW-XGB through gradient-boosted trees (src/ml/gbdt),
// LW-NN through a small MLP on the engine. Being query-driven, they carry
// the workload-drift weakness the paper's Problem (5) describes: accurate
// on In-Q, degraded on Rand-Q — which is exactly the contrast the accuracy
// benches surface.
#ifndef DUET_BASELINES_LW_LW_MODELS_H_
#define DUET_BASELINES_LW_LW_MODELS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/table.h"
#include "ml/gbdt.h"
#include "nn/layers.h"
#include "query/estimator.h"
#include "query/query.h"

namespace duet::baselines {

/// Shared featurization: 3 floats per column = {lo/ndv, hi/ndv, constrained}.
/// Unconstrained columns encode the full interval [0, 1] with flag 0.
class LwFeaturizer {
 public:
  explicit LwFeaturizer(const data::Table& table);

  int64_t width() const { return 3 * num_columns_; }

  /// Writes width() floats for `query` into dst.
  void Encode(const query::Query& query, float* dst) const;

  /// Feature matrix for a whole workload.
  ml::Matrix EncodeWorkload(const std::vector<query::Query>& queries) const;

 private:
  const data::Table& table_;
  int64_t num_columns_;
};

/// Clipped log2 selectivity target; estimates are floored at one tuple.
float LwLogSelectivity(uint64_t cardinality, int64_t num_rows);

/// LW-XGB configuration.
struct LwXgbOptions {
  ml::GbdtOptions gbdt;
};

/// Gradient-boosted-tree selectivity regressor.
class LwXgbEstimator : public query::CardinalityEstimator {
 public:
  LwXgbEstimator(const data::Table& table, LwXgbOptions options = {});

  /// Fits on a labeled workload.
  void Train(const query::Workload& workload);

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return "LW-XGB"; }
  double SizeMB() const override { return gbdt_.SizeMB(); }

  const ml::GbdtRegressor& model() const { return gbdt_; }

 private:
  const data::Table& table_;
  LwFeaturizer featurizer_;
  ml::GbdtRegressor gbdt_;
};

/// LW-NN configuration.
struct LwNnOptions {
  std::vector<int64_t> hidden_sizes = {64, 64};
  int epochs = 60;
  int64_t batch_size = 128;
  float learning_rate = 1e-3f;
  uint64_t seed = 17;
};

/// MLP selectivity regressor on the same features.
class LwNnEstimator : public nn::Module, public query::CardinalityEstimator {
 public:
  LwNnEstimator(const data::Table& table, LwNnOptions options = {});

  /// Fits on a labeled workload; returns the per-epoch training MSE.
  std::vector<double> Train(const query::Workload& workload);

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return "LW-NN"; }
  double SizeMB() const override { return Module::SizeMB(); }

  /// Packed-weight backend for the regression MLP (both hierarchies'
  /// virtuals, see MscnModel).
  void SetInferenceBackend(tensor::WeightBackend backend) const override {
    mlp_->SetInferenceBackend(backend);
  }
  void SetInferenceBackend(tensor::WeightBackend backend) override {
    static_cast<const LwNnEstimator&>(*this).SetInferenceBackend(backend);
  }
  uint64_t CachedBytes() const override { return mlp_->CachedBytes(); }
  uint64_t PackedWeightBytes() const override { return CachedBytes(); }
  void SetPlanEnabled(bool enabled) const override { mlp_->SetPlanEnabled(enabled); }
  void SetPlanEnabled(bool enabled) override {
    static_cast<const LwNnEstimator&>(*this).SetPlanEnabled(enabled);
  }
  uint64_t PlanBytes() const override { return mlp_->PlanBytes(); }
  nn::PlanTelemetry PlanInfo() const override { return mlp_->PlanInfo(); }
  uint64_t PlanCompileMicros() const override { return PlanInfo().compile_micros; }
  uint64_t PlanCacheHits() const override { return PlanInfo().cache_hits; }

 private:
  const data::Table& table_;
  LwFeaturizer featurizer_;
  LwNnOptions options_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_LW_LW_MODELS_H_
