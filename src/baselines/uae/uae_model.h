// UAE baseline (Wu & Cong, SIGMOD 2021; paper Sec. V-A5 #7).
//
// UAE keeps Naru's architecture and progressive-sampling inference but makes
// the sampling differentiable with the Gumbel-Softmax trick, so labeled
// queries can supervise the autoregressive model (hybrid training). The
// cost is the paper's Problem 3: each training query is expanded into
// `train_samples` Monte-Carlo paths whose whole activation history must be
// retained for backprop — the effective batch is bs x s, and at the paper's
// settings (bs=2048, s=2000) this exceeds a 48 GB GPU. The trainer models
// that memory requirement explicitly and reports OOM instead of thrashing.
#ifndef DUET_BASELINES_UAE_UAE_MODEL_H_
#define DUET_BASELINES_UAE_UAE_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/naru/naru_model.h"
#include "core/trainer.h"
#include "query/estimator.h"
#include "tensor/optimizer.h"

namespace duet::baselines {

/// UAE = Naru + hybrid-training knobs.
struct UaeOptions {
  NaruOptions naru;
  /// Gumbel-Softmax sample paths per training query (paper-scale is 2000).
  int train_samples = 16;
  /// Gumbel-Softmax temperature.
  float gumbel_tau = 1.0f;
  /// Weight of the (unmapped) Q-error query loss. UAE scales the raw
  /// Q-error by a single factor; the huge early values destabilize training
  /// (reproduced in Fig. 3 / the Kddcup98 gradient explosion).
  float query_weight = 1.0f;
  /// Modeled accelerator memory budget; training whose retained-activation
  /// estimate exceeds this reports OOM (Table III).
  double memory_budget_mb = 4096.0;
};

/// UAE model: owns a NaruModel and adds the differentiable estimator.
class UaeModel {
 public:
  UaeModel(const data::Table& table, UaeOptions options);

  /// Differentiable selectivity via Gumbel-Softmax progressive sampling.
  /// Returns [num_queries]; the computation graph spans one forward pass per
  /// column and train_samples paths per query.
  tensor::Tensor SelectivityBatchDifferentiable(const std::vector<query::Query>& queries,
                                                Rng& rng) const;

  /// Estimated retained-activation memory (MB) for one hybrid step with the
  /// given query batch size (see header comment).
  double EstimatedTrainMemoryMB(int64_t query_batch) const;

  NaruModel& naru() { return *naru_; }
  const NaruModel& naru() const { return *naru_; }
  const UaeOptions& options() const { return options_; }
  const data::Table& table() const { return naru_->table(); }

 private:
  UaeOptions options_;
  std::unique_ptr<NaruModel> naru_;
};

/// Hybrid trainer; mirrors Algorithm 2's loop with UAE's loss
/// L = L_data + w * QError (unmapped).
class UaeTrainer {
 public:
  UaeTrainer(UaeModel& model, core::TrainOptions options);

  std::vector<core::EpochStats> Train(
      const std::function<void(const core::EpochStats&)>& on_epoch = {});
  core::EpochStats TrainEpoch(int epoch_index);

  /// True if the memory model rejected the configuration.
  bool oom() const { return oom_; }

 private:
  UaeModel& model_;
  core::TrainOptions options_;
  tensor::Adam optimizer_;
  Rng rng_;
  size_t workload_cursor_ = 0;
  bool oom_ = false;
};

/// Estimator adapter: UAE inference is Naru's progressive sampling, with
/// the same deterministic per-query seeding (batch == loop).
class UaeEstimator : public query::CardinalityEstimator {
 public:
  UaeEstimator(const UaeModel& model, std::string name = "UAE", uint64_t seed = 19)
      : model_(model), name_(std::move(name)), seed_(seed) {}

  double EstimateSelectivity(const query::Query& query) override {
    return model_.naru().EstimateSelectivitySeeded(query,
                                                  DeterministicQuerySeed(query, seed_));
  }
  std::vector<double> EstimateSelectivityBatch(
      const std::vector<query::Query>& queries) override {
    return model_.naru().EstimateSelectivityBatch(queries, seed_);
  }
  void SetInferenceBackend(tensor::WeightBackend backend) override {
    model_.naru().SetInferenceBackend(backend);
  }
  uint64_t PackedWeightBytes() const override { return model_.naru().CachedBytes(); }
  void SetPlanEnabled(bool enabled) override { model_.naru().SetPlanEnabled(enabled); }
  uint64_t PlanBytes() const override { return model_.naru().PlanBytes(); }
  uint64_t PlanCompileMicros() const override {
    return model_.naru().PlanInfo().compile_micros;
  }
  uint64_t PlanCacheHits() const override { return model_.naru().PlanInfo().cache_hits; }
  std::string name() const override { return name_; }
  double SizeMB() const override { return model_.naru().SizeMB(); }

 private:
  const UaeModel& model_;
  std::string name_;
  uint64_t seed_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_UAE_UAE_MODEL_H_
