#include "baselines/uae/uae_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "tensor/ops.h"

namespace duet::baselines {

using tensor::Tensor;

namespace {
constexpr float kEps = 1e-12f;
}  // namespace

UaeModel::UaeModel(const data::Table& table, UaeOptions options) : options_(std::move(options)) {
  naru_ = std::make_unique<NaruModel>(table, options_.naru);
}

double UaeModel::EstimatedTrainMemoryMB(int64_t query_batch) const {
  const auto& made = naru_->made();
  int64_t per_row = made.input_dim() + 2 * made.output_dim();
  for (int64_t h : options_.naru.hidden_sizes) per_row += 2 * h;
  const int64_t rows = query_batch * options_.train_samples;
  const int64_t steps = table().num_columns();  // one retained pass per column
  return static_cast<double>(rows) * static_cast<double>(per_row) *
         static_cast<double>(steps) * 4.0 / (1024.0 * 1024.0);
}

Tensor UaeModel::SelectivityBatchDifferentiable(const std::vector<query::Query>& queries,
                                                Rng& rng) const {
  DUET_CHECK(!queries.empty());
  const data::Table& table = naru_->table();
  const int n = table.num_columns();
  const int64_t qbs = static_cast<int64_t>(queries.size());
  const int64_t s = options_.train_samples;
  const int64_t rows = qbs * s;
  const auto& enc = naru_->encoder();

  // Per-query per-column ranges; column is active if any query constrains it.
  std::vector<std::vector<query::CodeRange>> ranges(static_cast<size_t>(qbs));
  std::vector<bool> active(static_cast<size_t>(n), false);
  for (int64_t q = 0; q < qbs; ++q) {
    ranges[static_cast<size_t>(q)] = queries[static_cast<size_t>(q)].PerColumnRanges(table);
    for (int c = 0; c < n; ++c) {
      const query::CodeRange& r = ranges[static_cast<size_t>(q)][static_cast<size_t>(c)];
      if (!(r.lo == 0 && r.hi == table.column(c).ndv())) active[static_cast<size_t>(c)] = true;
    }
  }

  // Input blocks, updated column by column with soft one-hot samples.
  std::vector<Tensor> blocks_in(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    blocks_in[static_cast<size_t>(c)] = Tensor::Zeros({rows, enc.block_width(c)});
  }

  Tensor log_p = Tensor::Zeros({rows});
  const auto& out_blocks = naru_->made().output_blocks();

  for (int c = 0; c < n; ++c) {
    if (!active[static_cast<size_t>(c)]) continue;  // wildcard for all queries
    const int32_t ndv = table.column(c).ndv();

    // Constant mask [rows, ndv]: each query's range replicated over its
    // sample paths; unconstrained queries get an all-ones row.
    Tensor mask = Tensor::Zeros({rows, static_cast<int64_t>(ndv)});
    for (int64_t q = 0; q < qbs; ++q) {
      const query::CodeRange& r = ranges[static_cast<size_t>(q)][static_cast<size_t>(c)];
      for (int64_t k = 0; k < s; ++k) {
        float* row = mask.data() + (q * s + k) * ndv;
        for (int32_t j = r.lo; j < r.hi; ++j) row[j] = 1.0f;
      }
    }

    const Tensor x = tensor::ConcatCols(blocks_in);
    const Tensor logits = naru_->ForwardLogits(x);
    const tensor::BlockSpec& blk = out_blocks[static_cast<size_t>(c)];
    const Tensor probs = tensor::Softmax(tensor::SliceCols(logits, blk.offset, blk.len));
    const Tensor masked = tensor::Mul(probs, mask);
    const Tensor factor = tensor::SumCols(masked);  // [rows]
    log_p = tensor::Add(log_p, tensor::Log(tensor::ClampMin(factor, kEps)));

    // Gumbel-Softmax soft sample from the masked, renormalized distribution.
    Tensor gumbel = Tensor::Zeros({rows, static_cast<int64_t>(ndv)});
    for (int64_t i = 0; i < gumbel.numel(); ++i) {
      const double u = std::max(rng.UniformDouble(), 1e-12);
      gumbel.data()[i] = static_cast<float>(-std::log(-std::log(u)));
    }
    const Tensor soft = tensor::Softmax(tensor::MulScalar(
        tensor::Add(tensor::Log(tensor::ClampMin(masked, kEps)), gumbel),
        1.0f / options_.gumbel_tau));
    // Soft one-hot -> differentiable input encoding for this column.
    blocks_in[static_cast<size_t>(c)] = tensor::MatMul(soft, enc.BlockCodeMatrix(c));
  }

  // Mean over the s paths of each query.
  const Tensor p = tensor::Exp(log_p);
  const Tensor p2 = tensor::Reshape(p, {rows, 1});
  const std::vector<float> ones(static_cast<size_t>(rows), 1.0f);
  const Tensor pooled = tensor::MeanPoolSegments(p2, ones, qbs, s);  // [qbs, 1]
  return tensor::Reshape(pooled, {qbs});
}

UaeTrainer::UaeTrainer(UaeModel& model, core::TrainOptions options)
    : model_(model),
      options_(options),
      optimizer_(model.naru().parameters(), options.learning_rate),
      rng_(options.seed) {}

core::EpochStats UaeTrainer::TrainEpoch(int epoch_index) {
  const data::Table& table = model_.table();
  const int64_t rows = table.num_rows();
  const int64_t bs = std::min<int64_t>(options_.batch_size, rows);
  const bool hybrid = options_.train_workload != nullptr;

  core::EpochStats stats;
  stats.epoch = epoch_index;
  if (hybrid) {
    const double need = model_.EstimatedTrainMemoryMB(bs);
    if (need > model_.options().memory_budget_mb) {
      // Paper Table III: UAE OOMs on Kddcup98 at its settings. We model the
      // retained-activation requirement instead of thrashing the host.
      oom_ = true;
      return stats;
    }
  }

  Timer timer;
  std::vector<uint32_t> perm = rng_.Permutation(static_cast<uint32_t>(rows));
  int64_t steps = 0, tuples = 0;
  for (int64_t begin = 0; begin + bs <= rows; begin += bs) {
    std::vector<int64_t> anchors(static_cast<size_t>(bs));
    for (int64_t i = 0; i < bs; ++i) {
      anchors[static_cast<size_t>(i)] = perm[static_cast<size_t>(begin + i)];
    }
    optimizer_.ZeroGrad();
    Tensor data_loss = model_.naru().DataLoss(anchors, rng_());
    Tensor loss = data_loss;
    double step_query_loss = 0.0;
    if (hybrid) {
      const query::Workload& wl = *options_.train_workload;
      // UAE's effective query batch is bounded by memory; keep it small and
      // proportional to the data batch.
      const size_t take = std::min<size_t>(wl.size(), static_cast<size_t>(std::max<int64_t>(
                                                          1, bs / 8)));
      std::vector<query::Query> queries;
      std::vector<float> actual(take);
      for (size_t i = 0; i < take; ++i) {
        const query::LabeledQuery& lq = wl[(workload_cursor_ + i) % wl.size()];
        queries.push_back(lq.query);
        actual[i] = std::max<float>(1.0f, static_cast<float>(lq.cardinality));
      }
      workload_cursor_ = (workload_cursor_ + take) % wl.size();
      Tensor sel = model_.SelectivityBatchDifferentiable(queries, rng_);
      Tensor est = tensor::ClampMin(
          tensor::MulScalar(sel, static_cast<float>(table.num_rows())), 1.0f);
      Tensor act = Tensor::FromVector({static_cast<int64_t>(take)},
                                      std::vector<float>(actual.begin(), actual.end()));
      std::vector<float> cond(take);
      for (size_t i = 0; i < take; ++i) cond[i] = est.data()[i] > actual[i] ? 1.0f : 0.0f;
      Tensor qerr = tensor::Select(cond, tensor::Div(est, act), tensor::Div(act, est));
      // UAE: single-factor scaling of the raw Q-error (no log mapping).
      Tensor lquery = tensor::MeanAll(qerr);
      step_query_loss = static_cast<double>(lquery.item());
      loss = tensor::Add(data_loss,
                         tensor::MulScalar(lquery, model_.options().query_weight));
    }
    loss.Backward();
    optimizer_.Step();
    stats.data_loss += static_cast<double>(data_loss.item());
    stats.query_loss += step_query_loss;
    ++steps;
    tuples += bs;
  }
  if (steps > 0) {
    stats.data_loss /= static_cast<double>(steps);
    stats.query_loss /= static_cast<double>(steps);
  }
  stats.seconds = timer.Seconds();
  stats.tuples_per_second =
      stats.seconds > 0.0 ? static_cast<double>(tuples) / stats.seconds : 0.0;
  return stats;
}

std::vector<core::EpochStats> UaeTrainer::Train(
    const std::function<void(const core::EpochStats&)>& on_epoch) {
  std::vector<core::EpochStats> history;
  for (int e = 0; e < options_.epochs; ++e) {
    history.push_back(TrainEpoch(e));
    if (oom_) break;
    if (on_epoch) on_epoch(history.back());
  }
  return history;
}

}  // namespace duet::baselines
