// DeepDB-style Relational Sum-Product Network (Hilprecht et al., VLDB 2020;
// paper Sec. V-A5 #5).
//
// Structure learning recursively partitions the table: columns split into
// independent groups when their pairwise (normalized mutual information)
// dependence is below a threshold (Product node); otherwise rows are
// clustered with 2-means (Sum node, weighted by cluster share); recursion
// bottoms out in leaves that keep per-column histograms and assume
// independence inside the leaf — the residual conditional-independence
// assumption responsible for DeepDB's long-tail errors (paper Problem 2).
#ifndef DUET_BASELINES_SPN_SPN_H_
#define DUET_BASELINES_SPN_SPN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/table.h"
#include "query/estimator.h"

namespace duet::baselines {

/// SPN structure-learning knobs.
struct SpnOptions {
  /// Stop splitting below this many rows (DeepDB's min_instances_slice).
  int64_t min_instances = 512;
  /// Columns whose normalized MI exceeds this are considered dependent.
  double dependence_threshold = 0.08;
  /// Rows sampled for the pairwise dependence test.
  int64_t dependence_sample = 3000;
  int kmeans_iters = 8;
  int max_depth = 24;
  uint64_t seed = 11;
};

/// Sum-product-network estimator over one table.
class SpnEstimator : public query::CardinalityEstimator {
 public:
  SpnEstimator(const data::Table& table, SpnOptions options = {});

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return "DeepDB"; }
  double SizeMB() const override;

  /// Introspection for tests: node counts by type.
  struct NodeCounts {
    int sum = 0;
    int product = 0;
    int leaf = 0;
  };
  NodeCounts CountNodes() const;

 private:
  struct Node {
    enum class Type { kSum, kProduct, kLeaf };
    Type type = Type::kLeaf;
    std::vector<int> scope;  // columns this node models
    // Sum node:
    std::vector<double> weights;
    std::vector<std::unique_ptr<Node>> children;
    // Leaf node: per-scope-column cumulative histograms (size ndv+1).
    std::vector<std::vector<double>> cum_hists;
  };

  std::unique_ptr<Node> Build(const std::vector<int64_t>& rows, const std::vector<int>& scope,
                              int depth, uint64_t seed);
  std::unique_ptr<Node> MakeLeaf(const std::vector<int64_t>& rows,
                                 const std::vector<int>& scope) const;
  double Evaluate(const Node& node, const std::vector<query::CodeRange>& ranges) const;
  void Count(const Node& node, NodeCounts* counts) const;
  double NodeBytes(const Node& node) const;

  const data::Table& table_;
  SpnOptions options_;
  std::unique_ptr<Node> root_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_SPN_SPN_H_
