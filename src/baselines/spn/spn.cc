#include "baselines/spn/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/rng.h"

namespace duet::baselines {

namespace {

/// Bins a code into [0, bins) proportionally to its position in the domain.
int32_t BinOf(int32_t code, int32_t ndv, int32_t bins) {
  if (ndv <= bins) return code;
  return static_cast<int32_t>(static_cast<int64_t>(code) * bins / ndv);
}

/// Normalized mutual information of two columns over a row subset.
double NormalizedMI(const data::Table& table, const std::vector<int64_t>& rows, int a, int b) {
  constexpr int32_t kMaxBins = 16;
  const int32_t bins_a = std::min<int32_t>(table.column(a).ndv(), kMaxBins);
  const int32_t bins_b = std::min<int32_t>(table.column(b).ndv(), kMaxBins);
  std::vector<double> joint(static_cast<size_t>(bins_a * bins_b), 0.0);
  std::vector<double> pa(static_cast<size_t>(bins_a), 0.0);
  std::vector<double> pb(static_cast<size_t>(bins_b), 0.0);
  const double inv = 1.0 / static_cast<double>(rows.size());
  for (int64_t r : rows) {
    const int32_t ba = BinOf(table.code(r, a), table.column(a).ndv(), bins_a);
    const int32_t bb = BinOf(table.code(r, b), table.column(b).ndv(), bins_b);
    joint[static_cast<size_t>(ba * bins_b + bb)] += inv;
    pa[static_cast<size_t>(ba)] += inv;
    pb[static_cast<size_t>(bb)] += inv;
  }
  double mi = 0.0, ha = 0.0, hb = 0.0;
  for (int32_t i = 0; i < bins_a; ++i) {
    if (pa[static_cast<size_t>(i)] > 0.0) ha -= pa[static_cast<size_t>(i)] * std::log(pa[static_cast<size_t>(i)]);
  }
  for (int32_t j = 0; j < bins_b; ++j) {
    if (pb[static_cast<size_t>(j)] > 0.0) hb -= pb[static_cast<size_t>(j)] * std::log(pb[static_cast<size_t>(j)]);
  }
  for (int32_t i = 0; i < bins_a; ++i) {
    for (int32_t j = 0; j < bins_b; ++j) {
      const double pij = joint[static_cast<size_t>(i * bins_b + j)];
      if (pij <= 0.0) continue;
      mi += pij * std::log(pij / (pa[static_cast<size_t>(i)] * pb[static_cast<size_t>(j)]));
    }
  }
  const double h = std::min(ha, hb);
  if (h <= 1e-12) return 0.0;  // a (near-)constant column is independent
  return mi / h;
}

}  // namespace

SpnEstimator::SpnEstimator(const data::Table& table, SpnOptions options)
    : table_(table), options_(options) {
  std::vector<int64_t> rows(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) rows[static_cast<size_t>(r)] = r;
  std::vector<int> scope(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) scope[static_cast<size_t>(c)] = c;
  root_ = Build(rows, scope, 0, options_.seed);
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::MakeLeaf(
    const std::vector<int64_t>& rows, const std::vector<int>& scope) const {
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kLeaf;
  node->scope = scope;
  const double inv = 1.0 / static_cast<double>(rows.size());
  for (int c : scope) {
    const int32_t ndv = table_.column(c).ndv();
    std::vector<double> freq(static_cast<size_t>(ndv), 0.0);
    for (int64_t r : rows) freq[static_cast<size_t>(table_.code(r, c))] += inv;
    std::vector<double> cum(static_cast<size_t>(ndv) + 1, 0.0);
    for (int32_t k = 0; k < ndv; ++k) {
      cum[static_cast<size_t>(k) + 1] = cum[static_cast<size_t>(k)] + freq[static_cast<size_t>(k)];
    }
    node->cum_hists.push_back(std::move(cum));
  }
  return node;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::Build(const std::vector<int64_t>& rows,
                                                        const std::vector<int>& scope,
                                                        int depth, uint64_t seed) {
  DUET_CHECK(!rows.empty());
  DUET_CHECK(!scope.empty());
  if (static_cast<int64_t>(rows.size()) < options_.min_instances || scope.size() == 1 ||
      depth >= options_.max_depth) {
    return MakeLeaf(rows, scope);
  }
  Rng rng(seed);

  // --- Column split: connected components of the dependence graph. ---
  std::vector<int64_t> dep_rows = rows;
  if (static_cast<int64_t>(dep_rows.size()) > options_.dependence_sample) {
    std::vector<int64_t> sampled;
    sampled.reserve(static_cast<size_t>(options_.dependence_sample));
    for (int64_t i = 0; i < options_.dependence_sample; ++i) {
      sampled.push_back(dep_rows[rng.UniformInt(dep_rows.size())]);
    }
    dep_rows = std::move(sampled);
  }
  const int k = static_cast<int>(scope.size());
  std::vector<int> parent(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] = parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (NormalizedMI(table_, dep_rows, scope[static_cast<size_t>(i)],
                       scope[static_cast<size_t>(j)]) > options_.dependence_threshold) {
        parent[static_cast<size_t>(find(i))] = find(j);
      }
    }
  }
  std::vector<std::vector<int>> groups;
  {
    std::vector<int> group_of(static_cast<size_t>(k), -1);
    for (int i = 0; i < k; ++i) {
      const int root = find(i);
      if (group_of[static_cast<size_t>(root)] < 0) {
        group_of[static_cast<size_t>(root)] = static_cast<int>(groups.size());
        groups.emplace_back();
      }
      groups[static_cast<size_t>(group_of[static_cast<size_t>(root)])].push_back(
          scope[static_cast<size_t>(i)]);
    }
  }
  if (groups.size() > 1) {
    auto node = std::make_unique<Node>();
    node->type = Node::Type::kProduct;
    node->scope = scope;
    for (const auto& g : groups) {
      node->children.push_back(Build(rows, g, depth + 1, rng()));
    }
    return node;
  }

  // --- Row split: 2-means over z-scored codes of the scope columns. ---
  const size_t dims = scope.size();
  std::vector<double> mean(dims, 0.0), stdev(dims, 0.0);
  for (size_t d = 0; d < dims; ++d) {
    for (int64_t r : dep_rows) mean[d] += table_.code(r, scope[d]);
    mean[d] /= static_cast<double>(dep_rows.size());
    for (int64_t r : dep_rows) {
      const double diff = table_.code(r, scope[d]) - mean[d];
      stdev[d] += diff * diff;
    }
    stdev[d] = std::sqrt(stdev[d] / static_cast<double>(dep_rows.size()));
    if (stdev[d] < 1e-9) stdev[d] = 1.0;
  }
  auto feature = [&](int64_t r, size_t d) {
    return (static_cast<double>(table_.code(r, scope[d])) - mean[d]) / stdev[d];
  };
  // Initialize centroids from two random rows.
  std::vector<double> c0(dims), c1(dims);
  const int64_t r0 = rows[rng.UniformInt(rows.size())];
  const int64_t r1 = rows[rng.UniformInt(rows.size())];
  for (size_t d = 0; d < dims; ++d) {
    c0[d] = feature(r0, d);
    c1[d] = feature(r1, d) + 1e-3;
  }
  std::vector<uint8_t> assign(rows.size(), 0);
  for (int iter = 0; iter < options_.kmeans_iters; ++iter) {
    std::vector<double> n0(dims, 0.0), n1(dims, 0.0);
    int64_t cnt0 = 0, cnt1 = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      double d0 = 0.0, d1 = 0.0;
      for (size_t d = 0; d < dims; ++d) {
        const double v = feature(rows[i], d);
        d0 += (v - c0[d]) * (v - c0[d]);
        d1 += (v - c1[d]) * (v - c1[d]);
      }
      assign[i] = d1 < d0 ? 1 : 0;
      auto& acc = assign[i] ? n1 : n0;
      for (size_t d = 0; d < dims; ++d) acc[d] += feature(rows[i], d);
      (assign[i] ? cnt1 : cnt0)++;
    }
    if (cnt0 == 0 || cnt1 == 0) break;
    for (size_t d = 0; d < dims; ++d) {
      c0[d] = n0[d] / static_cast<double>(cnt0);
      c1[d] = n1[d] / static_cast<double>(cnt1);
    }
  }
  std::vector<int64_t> left, right;
  for (size_t i = 0; i < rows.size(); ++i) {
    (assign[i] ? right : left).push_back(rows[i]);
  }
  if (left.empty() || right.empty()) {
    return MakeLeaf(rows, scope);  // degenerate clustering
  }
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kSum;
  node->scope = scope;
  node->weights = {static_cast<double>(left.size()) / static_cast<double>(rows.size()),
                   static_cast<double>(right.size()) / static_cast<double>(rows.size())};
  node->children.push_back(Build(left, scope, depth + 1, rng()));
  node->children.push_back(Build(right, scope, depth + 1, rng()));
  return node;
}

double SpnEstimator::Evaluate(const Node& node,
                              const std::vector<query::CodeRange>& ranges) const {
  switch (node.type) {
    case Node::Type::kLeaf: {
      double p = 1.0;
      for (size_t i = 0; i < node.scope.size(); ++i) {
        const int c = node.scope[i];
        const query::CodeRange& r = ranges[static_cast<size_t>(c)];
        if (r.lo == 0 && r.hi == table_.column(c).ndv()) continue;
        const auto& cum = node.cum_hists[i];
        p *= cum[static_cast<size_t>(r.hi)] - cum[static_cast<size_t>(r.lo)];
      }
      return p;
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      for (const auto& child : node.children) p *= Evaluate(*child, ranges);
      return p;
    }
    case Node::Type::kSum: {
      double p = 0.0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        p += node.weights[i] * Evaluate(*node.children[i], ranges);
      }
      return p;
    }
  }
  return 0.0;
}

double SpnEstimator::EstimateSelectivity(const query::Query& query) {
  const auto ranges = query.PerColumnRanges(table_);
  for (const query::CodeRange& r : ranges) {
    if (r.empty()) return 0.0;
  }
  return Evaluate(*root_, ranges);
}

void SpnEstimator::Count(const Node& node, NodeCounts* counts) const {
  switch (node.type) {
    case Node::Type::kSum:
      counts->sum++;
      break;
    case Node::Type::kProduct:
      counts->product++;
      break;
    case Node::Type::kLeaf:
      counts->leaf++;
      break;
  }
  for (const auto& child : node.children) Count(*child, counts);
}

SpnEstimator::NodeCounts SpnEstimator::CountNodes() const {
  NodeCounts counts;
  Count(*root_, &counts);
  return counts;
}

double SpnEstimator::NodeBytes(const Node& node) const {
  double bytes = static_cast<double>(node.scope.size()) * 4.0 + 32.0;
  for (const auto& h : node.cum_hists) bytes += static_cast<double>(h.size()) * 8.0;
  for (const auto& child : node.children) bytes += NodeBytes(*child);
  return bytes;
}

double SpnEstimator::SizeMB() const { return NodeBytes(*root_) / (1024.0 * 1024.0); }

}  // namespace duet::baselines
