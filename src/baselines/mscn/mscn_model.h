// MSCN baseline (Kipf et al., CIDR 2019; paper Sec. V-A5 #4, the
// "MSCN (bitmaps)" variant).
//
// A query-driven set model over single-table conjunctions: each predicate is
// featurized as [column one-hot | op one-hot | normalized value], embedded by
// a shared MLP and mean-pooled; a materialized-sample bitmap (bit = sample
// row satisfies the query) is embedded separately; both are concatenated and
// regressed to the min-max-normalized log selectivity. Being a pure
// regression on labeled queries, it is fast but inherits the workload-drift
// problem (paper Problem 5).
#ifndef DUET_BASELINES_MSCN_MSCN_MODEL_H_
#define DUET_BASELINES_MSCN_MSCN_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "query/estimator.h"
#include "tensor/optimizer.h"

namespace duet::baselines {

/// MSCN knobs.
struct MscnOptions {
  int64_t hidden = 64;
  /// Maximum predicates per query (set size); extra predicates are checked.
  int max_preds = 16;
  /// Materialized sample size for the bitmap feature.
  int64_t bitmap_size = 1000;
  uint64_t seed = 5;
  int epochs = 60;
  int64_t batch_size = 128;
  float learning_rate = 1e-3f;
  /// Query-masking probability (RobustMSCN, Negi et al. 2023, paper ref
  /// [45]): during training each predicate is dropped from the featurization
  /// (set features and bitmap alike) with this probability while the label
  /// stays that of the full query, teaching the regressor to stay calibrated
  /// on unfamiliar predicate combinations. 0 = plain MSCN.
  double mask_prob = 0.0;
};

/// MSCN model + estimator.
class MscnModel : public nn::Module, public query::CardinalityEstimator {
 public:
  MscnModel(const data::Table& table, MscnOptions options);

  /// Supervised training on a labeled workload. Returns per-epoch MSE.
  std::vector<double> Train(const query::Workload& workload);

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return options_.mask_prob > 0 ? "RobustMSCN" : "MSCN"; }
  double SizeMB() const override { return nn::Module::SizeMB(); }

  /// Packed-weight backend for the set/bitmap/output MLPs. The class sits
  /// in both hierarchies, so both virtuals (Module's const, the
  /// estimator's non-const) forward to the same place.
  void SetInferenceBackend(tensor::WeightBackend backend) const override {
    pred_mlp_->SetInferenceBackend(backend);
    bitmap_mlp_->SetInferenceBackend(backend);
    out_mlp_->SetInferenceBackend(backend);
  }
  void SetInferenceBackend(tensor::WeightBackend backend) override {
    static_cast<const MscnModel&>(*this).SetInferenceBackend(backend);
  }
  uint64_t CachedBytes() const override {
    return pred_mlp_->CachedBytes() + bitmap_mlp_->CachedBytes() + out_mlp_->CachedBytes();
  }
  uint64_t PackedWeightBytes() const override { return CachedBytes(); }
  void SetPlanEnabled(bool enabled) const override {
    pred_mlp_->SetPlanEnabled(enabled);
    bitmap_mlp_->SetPlanEnabled(enabled);
    out_mlp_->SetPlanEnabled(enabled);
  }
  void SetPlanEnabled(bool enabled) override {
    static_cast<const MscnModel&>(*this).SetPlanEnabled(enabled);
  }
  uint64_t PlanBytes() const override {
    return pred_mlp_->PlanBytes() + bitmap_mlp_->PlanBytes() + out_mlp_->PlanBytes();
  }
  nn::PlanTelemetry PlanInfo() const override {
    nn::PlanTelemetry t = pred_mlp_->PlanInfo();
    t += bitmap_mlp_->PlanInfo();
    t += out_mlp_->PlanInfo();
    return t;
  }
  uint64_t PlanCompileMicros() const override { return PlanInfo().compile_micros; }
  uint64_t PlanCacheHits() const override { return PlanInfo().cache_hits; }

 private:
  /// Featurizes queries into predicate-set tensors + bitmap tensor.
  struct Features {
    tensor::Tensor pred_feats;    // [B * S, F]
    std::vector<float> presence;  // [B * S]
    tensor::Tensor bitmaps;       // [B, bitmap_size]
  };
  Features Featurize(const std::vector<query::Query>& queries) const;

  /// Forward to normalized log-selectivity in (0, 1): [B].
  tensor::Tensor ForwardNormalized(const Features& f, int64_t batch) const;

  const data::Table& table_;
  MscnOptions options_;
  std::vector<int64_t> sample_rows_;  // materialized sample for bitmaps
  std::unique_ptr<nn::Mlp> pred_mlp_;
  std::unique_ptr<nn::Mlp> bitmap_mlp_;
  std::unique_ptr<nn::Mlp> out_mlp_;
  double log_min_;  // log(1/rows): normalization floor
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_MSCN_MSCN_MODEL_H_
