#include "baselines/mscn/mscn_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace duet::baselines {

using tensor::Tensor;

MscnModel::MscnModel(const data::Table& table, MscnOptions options)
    : table_(table), options_(std::move(options)) {
  Rng rng(options_.seed);
  const int64_t rows = table.num_rows();
  const int64_t take = std::min<int64_t>(options_.bitmap_size, rows);
  options_.bitmap_size = take;
  std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(rows));
  sample_rows_.reserve(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) sample_rows_.push_back(perm[static_cast<size_t>(i)]);

  const int64_t f = table.num_columns() + query::kNumPredOps + 1;
  pred_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{f, options_.hidden, options_.hidden}, rng);
  bitmap_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{take, options_.hidden}, rng);
  out_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{2 * options_.hidden, options_.hidden, 1}, rng);
  RegisterChild(*pred_mlp_);
  RegisterChild(*bitmap_mlp_);
  RegisterChild(*out_mlp_);
  log_min_ = std::log(1.0 / static_cast<double>(rows));
}

MscnModel::Features MscnModel::Featurize(const std::vector<query::Query>& queries) const {
  const int64_t b = static_cast<int64_t>(queries.size());
  const int64_t s = options_.max_preds;
  const int n = table_.num_columns();
  const int64_t f = n + query::kNumPredOps + 1;
  Features out;
  out.pred_feats = Tensor::Zeros({b * s, f});
  out.presence.assign(static_cast<size_t>(b * s), 0.0f);
  out.bitmaps = Tensor::Zeros({b, options_.bitmap_size});
  for (int64_t q = 0; q < b; ++q) {
    const query::Query& query = queries[static_cast<size_t>(q)];
    DUET_CHECK_LE(static_cast<int64_t>(query.predicates.size()), s)
        << "query exceeds MSCN max_preds";
    for (size_t p = 0; p < query.predicates.size(); ++p) {
      const query::Predicate& pred = query.predicates[p];
      float* row = out.pred_feats.data() + (q * s + static_cast<int64_t>(p)) * f;
      row[pred.col] = 1.0f;
      row[n + static_cast<int32_t>(pred.op)] = 1.0f;
      const data::Column& col = table_.column(pred.col);
      const int32_t code = std::clamp(col.LowerBound(pred.value), 0, col.ndv() - 1);
      row[n + query::kNumPredOps] =
          col.ndv() > 1 ? static_cast<float>(code) / static_cast<float>(col.ndv() - 1) : 0.0f;
      out.presence[static_cast<size_t>(q * s + static_cast<int64_t>(p))] = 1.0f;
    }
    // Materialized-sample bitmap.
    const auto ranges = query.PerColumnRanges(table_);
    float* bits = out.bitmaps.data() + q * options_.bitmap_size;
    for (int64_t i = 0; i < options_.bitmap_size; ++i) {
      const int64_t row_idx = sample_rows_[static_cast<size_t>(i)];
      bool ok = true;
      for (const query::Predicate& pred : query.predicates) {
        const query::CodeRange& r = ranges[static_cast<size_t>(pred.col)];
        const int32_t code = table_.code(row_idx, pred.col);
        if (code < r.lo || code >= r.hi) {
          ok = false;
          break;
        }
      }
      bits[i] = ok ? 1.0f : 0.0f;
    }
  }
  return out;
}

Tensor MscnModel::ForwardNormalized(const Features& f, int64_t batch) const {
  using namespace tensor;  // NOLINT
  Tensor pred_emb = Relu(pred_mlp_->Forward(f.pred_feats));
  Tensor pooled = MeanPoolSegments(pred_emb, f.presence, batch, options_.max_preds);
  Tensor bitmap_emb = Relu(bitmap_mlp_->Forward(f.bitmaps));
  Tensor joint = ConcatCols({pooled, bitmap_emb});
  Tensor y = Sigmoid(out_mlp_->Forward(joint));  // [B, 1]
  return Reshape(y, {batch});
}

std::vector<double> MscnModel::Train(const query::Workload& workload) {
  DUET_CHECK(!workload.empty());
  tensor::Adam opt(parameters(), options_.learning_rate);
  Rng rng(options_.seed ^ 0x5eedULL);
  const int64_t rows = table_.num_rows();
  std::vector<double> history;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(workload.size()));
    double epoch_loss = 0.0;
    int64_t steps = 0;
    for (size_t begin = 0; begin + options_.batch_size <= perm.size() || begin == 0;
         begin += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(perm.size(), begin + static_cast<size_t>(options_.batch_size));
      if (begin >= end) break;
      std::vector<query::Query> queries;
      std::vector<float> targets;
      for (size_t i = begin; i < end; ++i) {
        const query::LabeledQuery& lq = workload[perm[i]];
        query::Query q = lq.query;
        if (options_.mask_prob > 0.0 && q.predicates.size() > 1) {
          // RobustMSCN query masking: drop predicates from the featurization
          // (never all of them) while keeping the full query's label.
          std::vector<query::Predicate> kept;
          for (const query::Predicate& p : q.predicates) {
            if (!rng.Bernoulli(options_.mask_prob)) kept.push_back(p);
          }
          if (!kept.empty()) q.predicates = std::move(kept);
        }
        queries.push_back(std::move(q));
        const double sel =
            std::max<double>(1.0, static_cast<double>(lq.cardinality)) / static_cast<double>(rows);
        targets.push_back(static_cast<float>(1.0 - std::log(sel) / log_min_));
      }
      const Features f = Featurize(queries);
      opt.ZeroGrad();
      Tensor y = ForwardNormalized(f, static_cast<int64_t>(queries.size()));
      Tensor t = Tensor::FromVector({static_cast<int64_t>(targets.size())}, targets);
      Tensor diff = tensor::Sub(y, t);
      Tensor loss = tensor::MeanAll(tensor::Mul(diff, diff));
      loss.Backward();
      opt.Step();
      epoch_loss += static_cast<double>(loss.item());
      ++steps;
      if (end == perm.size()) break;
    }
    history.push_back(steps > 0 ? epoch_loss / static_cast<double>(steps) : 0.0);
  }
  return history;
}

double MscnModel::EstimateSelectivity(const query::Query& query) {
  tensor::NoGradGuard no_grad;
  const Features f = Featurize({query});
  const Tensor y = ForwardNormalized(f, 1);
  const double norm = static_cast<double>(y.data()[0]);
  return std::exp((norm - 1.0) * -log_min_ + 0.0);
}

}  // namespace duet::baselines
