#include "baselines/pgm/chow_liu.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace duet::baselines {

namespace {

/// Bucket index of a code under contiguous bucket bounds.
int BucketOf(const std::vector<int32_t>& bounds, int32_t code) {
  // bounds = {b0=0, b1, ..., bk=ndv}; bucket i covers [bounds[i], bounds[i+1]).
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), code);
  return static_cast<int>(it - bounds.begin()) - 1;
}

}  // namespace

ChowLiuEstimator::ChowLiuEstimator(const data::Table& table, ChowLiuOptions options)
    : table_(table), options_(options) {
  const int n = table.num_columns();
  const int64_t rows = table.num_rows();
  DUET_CHECK_GT(n, 0);
  DUET_CHECK_GT(rows, 0);
  DUET_CHECK_GE(options_.max_buckets, 1);

  // --- Bucketize every column: equal-frequency contiguous code intervals ---
  bucket_bounds_.resize(static_cast<size_t>(n));
  bucket_row_counts_.resize(static_cast<size_t>(n));
  code_count_prefix_.resize(static_cast<size_t>(n));
  std::vector<std::vector<int>> row_buckets(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    const data::Column& col = table.column(c);
    const int32_t ndv = col.ndv();
    std::vector<int64_t> code_counts(static_cast<size_t>(ndv), 0);
    for (int64_t r = 0; r < rows; ++r) code_counts[static_cast<size_t>(col.code(r))]++;

    std::vector<int64_t>& prefix = code_count_prefix_[static_cast<size_t>(c)];
    prefix.assign(static_cast<size_t>(ndv) + 1, 0);
    for (int32_t v = 0; v < ndv; ++v) {
      prefix[static_cast<size_t>(v) + 1] = prefix[static_cast<size_t>(v)] + code_counts[static_cast<size_t>(v)];
    }

    std::vector<int32_t>& bounds = bucket_bounds_[static_cast<size_t>(c)];
    bounds.push_back(0);
    if (ndv <= options_.max_buckets) {
      for (int32_t v = 1; v <= ndv; ++v) bounds.push_back(v);
    } else {
      // Equal-frequency: advance the boundary once a bucket holds its share.
      const double target = static_cast<double>(rows) / options_.max_buckets;
      double acc = 0.0;
      for (int32_t v = 0; v < ndv; ++v) {
        acc += static_cast<double>(code_counts[static_cast<size_t>(v)]);
        const bool last_bucket = static_cast<int>(bounds.size()) == options_.max_buckets;
        if (acc >= target && !last_bucket && v + 1 < ndv) {
          bounds.push_back(v + 1);
          acc = 0.0;
        }
      }
      bounds.push_back(ndv);
    }

    const int num_b = static_cast<int>(bounds.size()) - 1;
    bucket_row_counts_[static_cast<size_t>(c)].assign(static_cast<size_t>(num_b), 0);
    for (int b = 0; b < num_b; ++b) {
      bucket_row_counts_[static_cast<size_t>(c)][static_cast<size_t>(b)] =
          prefix[static_cast<size_t>(bounds[static_cast<size_t>(b) + 1])] -
          prefix[static_cast<size_t>(bounds[static_cast<size_t>(b)])];
    }

    std::vector<int>& rb = row_buckets[static_cast<size_t>(c)];
    rb.resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      rb[static_cast<size_t>(r)] = BucketOf(bounds, col.code(r));
    }
  }

  // --- Pairwise mutual information over bucketized columns ---
  mi_.assign(static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int a = 0; a < n; ++a) {
    const int ba = num_buckets(a);
    for (int b = a + 1; b < n; ++b) {
      const int bb = num_buckets(b);
      std::vector<int64_t> joint(static_cast<size_t>(ba) * static_cast<size_t>(bb), 0);
      const std::vector<int>& ra = row_buckets[static_cast<size_t>(a)];
      const std::vector<int>& rb = row_buckets[static_cast<size_t>(b)];
      for (int64_t r = 0; r < rows; ++r) {
        joint[static_cast<size_t>(ra[static_cast<size_t>(r)]) * static_cast<size_t>(bb) +
              static_cast<size_t>(rb[static_cast<size_t>(r)])]++;
      }
      double mi = 0.0;
      for (int i = 0; i < ba; ++i) {
        const double pa = static_cast<double>(
                              bucket_row_counts_[static_cast<size_t>(a)][static_cast<size_t>(i)]) /
                          static_cast<double>(rows);
        if (pa == 0.0) continue;
        for (int j = 0; j < bb; ++j) {
          const int64_t cnt = joint[static_cast<size_t>(i) * static_cast<size_t>(bb) +
                                    static_cast<size_t>(j)];
          if (cnt == 0) continue;
          const double pj = static_cast<double>(cnt) / static_cast<double>(rows);
          const double pb = static_cast<double>(bucket_row_counts_[static_cast<size_t>(b)]
                                                                  [static_cast<size_t>(j)]) /
                            static_cast<double>(rows);
          mi += pj * std::log(pj / (pa * pb));
        }
      }
      mi_[static_cast<size_t>(a)][static_cast<size_t>(b)] = mi;
      mi_[static_cast<size_t>(b)][static_cast<size_t>(a)] = mi;
    }
  }

  // --- Maximum spanning tree (Prim), rooted at column 0 ---
  root_ = 0;
  parents_.assign(static_cast<size_t>(n), -1);
  children_.assign(static_cast<size_t>(n), {});
  std::vector<bool> in_tree(static_cast<size_t>(n), false);
  std::vector<double> best_w(static_cast<size_t>(n), -1.0);
  std::vector<int> best_p(static_cast<size_t>(n), -1);
  in_tree[static_cast<size_t>(root_)] = true;
  for (int c = 0; c < n; ++c) {
    if (c == root_) continue;
    best_w[static_cast<size_t>(c)] = mi_[static_cast<size_t>(root_)][static_cast<size_t>(c)];
    best_p[static_cast<size_t>(c)] = root_;
  }
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    double w = -std::numeric_limits<double>::infinity();
    for (int c = 0; c < n; ++c) {
      if (!in_tree[static_cast<size_t>(c)] && best_w[static_cast<size_t>(c)] > w) {
        w = best_w[static_cast<size_t>(c)];
        pick = c;
      }
    }
    DUET_CHECK_GE(pick, 0);
    in_tree[static_cast<size_t>(pick)] = true;
    parents_[static_cast<size_t>(pick)] = best_p[static_cast<size_t>(pick)];
    children_[static_cast<size_t>(best_p[static_cast<size_t>(pick)])].push_back(pick);
    for (int c = 0; c < n; ++c) {
      if (!in_tree[static_cast<size_t>(c)] &&
          mi_[static_cast<size_t>(pick)][static_cast<size_t>(c)] > best_w[static_cast<size_t>(c)]) {
        best_w[static_cast<size_t>(c)] = mi_[static_cast<size_t>(pick)][static_cast<size_t>(c)];
        best_p[static_cast<size_t>(c)] = pick;
      }
    }
  }

  // --- Parameters: root marginal + per-edge CPTs with Laplace smoothing ---
  const double alpha = options_.laplace_alpha;
  {
    const int rb = num_buckets(root_);
    root_marginal_.assign(static_cast<size_t>(rb), 0.0);
    const double denom = static_cast<double>(rows) + alpha * rb;
    for (int b = 0; b < rb; ++b) {
      root_marginal_[static_cast<size_t>(b)] =
          (static_cast<double>(bucket_row_counts_[static_cast<size_t>(root_)][static_cast<size_t>(b)]) +
           alpha) /
          denom;
    }
  }
  cpt_.resize(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    const int p = parents_[static_cast<size_t>(c)];
    if (p < 0) continue;
    const int bc = num_buckets(c);
    const int bp = num_buckets(p);
    std::vector<int64_t> joint(static_cast<size_t>(bp) * static_cast<size_t>(bc), 0);
    const std::vector<int>& rc = row_buckets[static_cast<size_t>(c)];
    const std::vector<int>& rp = row_buckets[static_cast<size_t>(p)];
    for (int64_t r = 0; r < rows; ++r) {
      joint[static_cast<size_t>(rp[static_cast<size_t>(r)]) * static_cast<size_t>(bc) +
            static_cast<size_t>(rc[static_cast<size_t>(r)])]++;
    }
    std::vector<double>& cpt = cpt_[static_cast<size_t>(c)];
    cpt.assign(static_cast<size_t>(bp) * static_cast<size_t>(bc), 0.0);
    for (int i = 0; i < bp; ++i) {
      const double denom =
          static_cast<double>(bucket_row_counts_[static_cast<size_t>(p)][static_cast<size_t>(i)]) +
          alpha * bc;
      for (int j = 0; j < bc; ++j) {
        cpt[static_cast<size_t>(i) * static_cast<size_t>(bc) + static_cast<size_t>(j)] =
            (static_cast<double>(joint[static_cast<size_t>(i) * static_cast<size_t>(bc) +
                                       static_cast<size_t>(j)]) +
             alpha) /
            denom;
      }
    }
  }
}

double ChowLiuEstimator::EdgeMutualInformation(int a, int b) const {
  return mi_[static_cast<size_t>(a)][static_cast<size_t>(b)];
}

std::vector<double> ChowLiuEstimator::EvidenceForRange(int col,
                                                       const query::CodeRange& range) const {
  const std::vector<int32_t>& bounds = bucket_bounds_[static_cast<size_t>(col)];
  const std::vector<int64_t>& prefix = code_count_prefix_[static_cast<size_t>(col)];
  const int nb = num_buckets(col);
  std::vector<double> ev(static_cast<size_t>(nb), 0.0);
  for (int b = 0; b < nb; ++b) {
    const int32_t blo = bounds[static_cast<size_t>(b)];
    const int32_t bhi = bounds[static_cast<size_t>(b) + 1];
    const int32_t lo = std::max(blo, range.lo);
    const int32_t hi = std::min(bhi, range.hi);
    const int64_t bucket_rows =
        bucket_row_counts_[static_cast<size_t>(col)][static_cast<size_t>(b)];
    if (lo >= hi || bucket_rows == 0) continue;
    const int64_t in_range =
        prefix[static_cast<size_t>(hi)] - prefix[static_cast<size_t>(lo)];
    ev[static_cast<size_t>(b)] =
        static_cast<double>(in_range) / static_cast<double>(bucket_rows);
  }
  return ev;
}

std::vector<double> ChowLiuEstimator::UpwardMessage(
    int col, const std::vector<std::vector<double>>& evidence) const {
  // belief_c(b) = evidence_c(b) * prod_{child k} m_{k->c}(b)
  const int nb = num_buckets(col);
  std::vector<double> belief = evidence[static_cast<size_t>(col)];
  for (int child : children_[static_cast<size_t>(col)]) {
    const std::vector<double> child_msg = UpwardMessage(child, evidence);
    const int bc = num_buckets(child);
    const std::vector<double>& cpt = cpt_[static_cast<size_t>(child)];
    for (int b = 0; b < nb; ++b) {
      double sum = 0.0;
      const double* row = cpt.data() + static_cast<size_t>(b) * static_cast<size_t>(bc);
      for (int j = 0; j < bc; ++j) sum += row[j] * child_msg[static_cast<size_t>(j)];
      belief[static_cast<size_t>(b)] *= sum;
    }
  }
  return belief;
}

double ChowLiuEstimator::EstimateSelectivity(const query::Query& query) {
  const std::vector<query::CodeRange> ranges = query.PerColumnRanges(table_);
  std::vector<std::vector<double>> evidence(static_cast<size_t>(table_.num_columns()));
  for (int c = 0; c < table_.num_columns(); ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    if (r.empty()) return 0.0;
    evidence[static_cast<size_t>(c)] = EvidenceForRange(c, r);
  }
  const std::vector<double> root_belief = UpwardMessage(root_, evidence);
  double sel = 0.0;
  for (size_t b = 0; b < root_belief.size(); ++b) {
    sel += root_marginal_[b] * root_belief[b];
  }
  return std::clamp(sel, 0.0, 1.0);
}

double ChowLiuEstimator::SizeMB() const {
  size_t doubles = root_marginal_.size();
  for (const auto& c : cpt_) doubles += c.size();
  size_t ints = 0;
  for (const auto& b : bucket_bounds_) ints += b.size();
  for (const auto& p : code_count_prefix_) ints += p.size();
  return static_cast<double>(doubles * sizeof(double) + ints * sizeof(int64_t)) /
         (1024.0 * 1024.0);
}

}  // namespace duet::baselines
