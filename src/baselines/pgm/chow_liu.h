// Chow-Liu tree probabilistic graphical model (PGM) baseline.
//
// Related work [40] (Chow & Liu 1968) approximates the joint distribution
// with the maximum-spanning tree over pairwise mutual information; classic
// PGM cardinality estimators use exactly this dependence-tree structure.
// The reproduction builds the tree over equal-frequency *bucketized*
// columns (contiguous code intervals, so range predicates translate to
// exact per-bucket overlap fractions), estimates edge CPTs with Laplace
// smoothing, and answers conjunctive range queries with one upward pass of
// belief propagation using soft evidence — O(N * B^2) per query.
//
// Like DeepDB's RSPN it is a *structural* independence approximation: it
// captures the strongest pairwise dependencies but cannot represent
// higher-order interactions, which is the accuracy gap the paper's
// learned-model comparisons (Table II) exhibit.
#ifndef DUET_BASELINES_PGM_CHOW_LIU_H_
#define DUET_BASELINES_PGM_CHOW_LIU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "query/estimator.h"
#include "query/query.h"

namespace duet::baselines {

/// Chow-Liu estimator configuration.
struct ChowLiuOptions {
  /// Maximum number of equal-frequency buckets per column; columns with
  /// fewer distinct values get one bucket per value (exact evidence).
  int max_buckets = 64;
  /// Laplace smoothing pseudo-count for CPT cells.
  double laplace_alpha = 0.5;
};

/// Tree-structured Bayesian network over bucketized columns.
class ChowLiuEstimator : public query::CardinalityEstimator {
 public:
  /// Builds structure + parameters from the table (one pass for buckets and
  /// marginals, one pass per column pair for mutual information).
  ChowLiuEstimator(const data::Table& table, ChowLiuOptions options = {});

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return "PGM"; }
  double SizeMB() const override;

  /// Parent of column c in the directed tree (-1 for the root).
  int parent(int c) const { return parents_[static_cast<size_t>(c)]; }
  int root() const { return root_; }
  int num_buckets(int c) const {
    return static_cast<int>(bucket_row_counts_[static_cast<size_t>(c)].size());
  }

  /// Mutual information used for the tree edges (exposed for tests).
  double EdgeMutualInformation(int a, int b) const;

 private:
  /// Per-column soft evidence: P(predicate satisfied | bucket).
  std::vector<double> EvidenceForRange(int col, const query::CodeRange& range) const;

  /// Recursive upward message of belief propagation.
  std::vector<double> UpwardMessage(int col,
                                    const std::vector<std::vector<double>>& evidence) const;

  const data::Table& table_;
  ChowLiuOptions options_;

  // Bucketization: bucket b of column c covers codes
  // [bucket_bounds_[c][b], bucket_bounds_[c][b+1]).
  std::vector<std::vector<int32_t>> bucket_bounds_;
  std::vector<std::vector<int64_t>> bucket_row_counts_;
  // Per-code row counts (prefix-summed) for exact overlap evidence.
  std::vector<std::vector<int64_t>> code_count_prefix_;

  // Tree structure.
  int root_ = 0;
  std::vector<int> parents_;
  std::vector<std::vector<int>> children_;
  std::vector<std::vector<double>> mi_;  // pairwise MI (symmetric)

  // Parameters: root marginal and per-edge CPTs
  // cpt_[c][p * B_c + b] = P(bucket_c = b | bucket_parent = p).
  std::vector<double> root_marginal_;
  std::vector<std::vector<double>> cpt_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_PGM_CHOW_LIU_H_
