// Traditional baseline: MHist n-dimensional histogram (paper Sec. V-A5 #3,
// after Poosala & Ioannidis). MHIST-2 style greedy construction: repeatedly
// split the heaviest bucket along its most-spread dimension at the median
// code, until the bucket budget is exhausted. Estimation assumes uniformity
// inside each bucket (fractional overlap product across dimensions).
#ifndef DUET_BASELINES_TRADITIONAL_MHIST_H_
#define DUET_BASELINES_TRADITIONAL_MHIST_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/estimator.h"

namespace duet::baselines {

/// Multi-dimensional equi-ish-depth histogram.
class MHistEstimator : public query::CardinalityEstimator {
 public:
  /// Builds up to `num_buckets` buckets over the full table.
  MHistEstimator(const data::Table& table, int num_buckets = 1024);

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return "MHist"; }
  double SizeMB() const override;

  int num_buckets() const { return static_cast<int>(buckets_.size()); }

 private:
  struct Bucket {
    std::vector<int32_t> lo;  // inclusive per-dimension code bounds
    std::vector<int32_t> hi;
    double count = 0.0;
  };

  const data::Table& table_;
  std::vector<Bucket> buckets_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_TRADITIONAL_MHIST_H_
