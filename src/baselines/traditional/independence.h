// Traditional baseline: attribute-value-independence estimator (paper
// Sec. V-A5 #2). Keeps exact per-column histograms and multiplies the
// per-predicate selectivities.
#ifndef DUET_BASELINES_TRADITIONAL_INDEPENDENCE_H_
#define DUET_BASELINES_TRADITIONAL_INDEPENDENCE_H_

#include <vector>

#include "data/table.h"
#include "query/estimator.h"

namespace duet::baselines {

/// Independence-assumption estimator with exact 1-D histograms.
class IndependenceEstimator : public query::CardinalityEstimator {
 public:
  explicit IndependenceEstimator(const data::Table& table);

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return "Indep"; }
  double SizeMB() const override;

 private:
  const data::Table& table_;
  /// freq_[c][code] = fraction of rows with that code; prefix-summed for
  /// O(1) range mass: cum_[c][k] = sum of freq over codes < k.
  std::vector<std::vector<double>> cum_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_TRADITIONAL_INDEPENDENCE_H_
