#include "baselines/traditional/sampling.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace duet::baselines {

SamplingEstimator::SamplingEstimator(const data::Table& table, double fraction, uint64_t seed)
    : table_(table) {
  DUET_CHECK_GT(fraction, 0.0);
  DUET_CHECK_LE(fraction, 1.0);
  const int64_t rows = table.num_rows();
  const int64_t take = std::max<int64_t>(1, static_cast<int64_t>(rows * fraction));
  Rng rng(seed);
  std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(rows));
  sample_rows_.reserve(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) sample_rows_.push_back(perm[static_cast<size_t>(i)]);
  std::sort(sample_rows_.begin(), sample_rows_.end());
}

double SamplingEstimator::EstimateSelectivity(const query::Query& query) {
  const auto ranges = query.PerColumnRanges(table_);
  // Restrict the scan to constrained columns.
  std::vector<int> cols;
  for (int c = 0; c < table_.num_columns(); ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    if (r.empty()) return 0.0;
    if (r.lo != 0 || r.hi != table_.column(c).ndv()) cols.push_back(c);
  }
  if (cols.empty()) return 1.0;
  int64_t hits = 0;
  for (int64_t row : sample_rows_) {
    bool ok = true;
    for (int c : cols) {
      const int32_t code = table_.code(row, c);
      const query::CodeRange& r = ranges[static_cast<size_t>(c)];
      if (code < r.lo || code >= r.hi) {
        ok = false;
        break;
      }
    }
    hits += ok ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(sample_rows_.size());
}

double SamplingEstimator::SizeMB() const {
  // The sample stores one code per column per sampled row (int32).
  return static_cast<double>(sample_rows_.size()) * table_.num_columns() * 4.0 /
         (1024.0 * 1024.0);
}

}  // namespace duet::baselines
