// Traditional baseline: uniform-sample estimator (paper Sec. V-A5 #1).
// Materializes p% of the rows and answers queries by scanning the sample.
#ifndef DUET_BASELINES_TRADITIONAL_SAMPLING_H_
#define DUET_BASELINES_TRADITIONAL_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/estimator.h"

namespace duet::baselines {

/// Uniform row-sample estimator.
class SamplingEstimator : public query::CardinalityEstimator {
 public:
  /// Samples `fraction` of the table's rows (at least 1) with `seed`.
  SamplingEstimator(const data::Table& table, double fraction = 0.01, uint64_t seed = 42);

  double EstimateSelectivity(const query::Query& query) override;
  std::string name() const override { return "Sampling"; }
  double SizeMB() const override;

  int64_t sample_size() const { return static_cast<int64_t>(sample_rows_.size()); }

 private:
  const data::Table& table_;
  std::vector<int64_t> sample_rows_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_TRADITIONAL_SAMPLING_H_
