#include "baselines/traditional/mhist.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "common/logging.h"

namespace duet::baselines {

namespace {

/// Build-time bucket: bounds + the rows it currently owns.
struct BuildBucket {
  std::vector<int32_t> lo;
  std::vector<int32_t> hi;
  std::vector<int64_t> rows;
};

}  // namespace

MHistEstimator::MHistEstimator(const data::Table& table, int num_buckets) : table_(table) {
  DUET_CHECK_GE(num_buckets, 1);
  const int n = table.num_columns();

  auto root = std::make_unique<BuildBucket>();
  root->lo.assign(static_cast<size_t>(n), 0);
  root->hi.resize(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) root->hi[static_cast<size_t>(c)] = table.column(c).ndv() - 1;
  root->rows.resize(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) root->rows[static_cast<size_t>(r)] = r;

  // Max-heap on row count.
  auto cmp = [](const std::unique_ptr<BuildBucket>& a, const std::unique_ptr<BuildBucket>& b) {
    return a->rows.size() < b->rows.size();
  };
  std::vector<std::unique_ptr<BuildBucket>> heap;
  heap.push_back(std::move(root));
  std::vector<std::unique_ptr<BuildBucket>> done;

  while (static_cast<int>(heap.size() + done.size()) < num_buckets && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    std::unique_ptr<BuildBucket> bucket = std::move(heap.back());
    heap.pop_back();
    if (bucket->rows.size() <= 1) {
      done.push_back(std::move(bucket));
      continue;
    }
    // Split dimension: the one with the widest code span.
    int dim = -1;
    int32_t best_span = 0;
    for (int c = 0; c < n; ++c) {
      const int32_t span = bucket->hi[static_cast<size_t>(c)] - bucket->lo[static_cast<size_t>(c)];
      if (span > best_span) {
        best_span = span;
        dim = c;
      }
    }
    if (dim < 0) {  // single-cell bucket, cannot split further
      done.push_back(std::move(bucket));
      continue;
    }
    // Median code of the bucket's rows along `dim`.
    std::vector<int32_t> codes;
    codes.reserve(bucket->rows.size());
    for (int64_t r : bucket->rows) codes.push_back(table.code(r, dim));
    std::nth_element(codes.begin(), codes.begin() + static_cast<int64_t>(codes.size() / 2),
                     codes.end());
    int32_t split = codes[codes.size() / 2];
    // Left = codes <= split; ensure both halves are non-empty in code space.
    if (split >= bucket->hi[static_cast<size_t>(dim)]) {
      split = bucket->hi[static_cast<size_t>(dim)] - 1;
    }
    if (split < bucket->lo[static_cast<size_t>(dim)]) {
      done.push_back(std::move(bucket));
      continue;
    }
    auto left = std::make_unique<BuildBucket>();
    auto right = std::make_unique<BuildBucket>();
    left->lo = bucket->lo;
    left->hi = bucket->hi;
    left->hi[static_cast<size_t>(dim)] = split;
    right->lo = bucket->lo;
    right->hi = bucket->hi;
    right->lo[static_cast<size_t>(dim)] = split + 1;
    for (int64_t r : bucket->rows) {
      if (table.code(r, dim) <= split) {
        left->rows.push_back(r);
      } else {
        right->rows.push_back(r);
      }
    }
    heap.push_back(std::move(left));
    std::push_heap(heap.begin(), heap.end(), cmp);
    heap.push_back(std::move(right));
    std::push_heap(heap.begin(), heap.end(), cmp);
  }
  for (auto& b : heap) done.push_back(std::move(b));

  buckets_.reserve(done.size());
  for (const auto& b : done) {
    if (b->rows.empty()) continue;
    Bucket out;
    out.lo = b->lo;
    out.hi = b->hi;
    out.count = static_cast<double>(b->rows.size());
    buckets_.push_back(std::move(out));
  }
}

double MHistEstimator::EstimateSelectivity(const query::Query& query) {
  const auto ranges = query.PerColumnRanges(table_);
  const int n = table_.num_columns();
  double total = 0.0;
  for (const Bucket& b : buckets_) {
    double frac = 1.0;
    for (int c = 0; c < n && frac > 0.0; ++c) {
      const query::CodeRange& r = ranges[static_cast<size_t>(c)];
      // Query interval [r.lo, r.hi) vs bucket interval [b.lo, b.hi].
      const int32_t lo = std::max(r.lo, b.lo[static_cast<size_t>(c)]);
      const int32_t hi = std::min(r.hi - 1, b.hi[static_cast<size_t>(c)]);
      if (lo > hi) {
        frac = 0.0;
        break;
      }
      const int32_t bucket_len = b.hi[static_cast<size_t>(c)] - b.lo[static_cast<size_t>(c)] + 1;
      frac *= static_cast<double>(hi - lo + 1) / static_cast<double>(bucket_len);
    }
    total += frac * b.count;
  }
  return total / static_cast<double>(table_.num_rows());
}

double MHistEstimator::SizeMB() const {
  const double per_bucket = static_cast<double>(table_.num_columns()) * 2.0 * 4.0 + 8.0;
  return static_cast<double>(buckets_.size()) * per_bucket / (1024.0 * 1024.0);
}

}  // namespace duet::baselines
