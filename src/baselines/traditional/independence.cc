#include "baselines/traditional/independence.h"

namespace duet::baselines {

IndependenceEstimator::IndependenceEstimator(const data::Table& table) : table_(table) {
  const double inv_rows = 1.0 / static_cast<double>(table.num_rows());
  cum_.resize(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    const data::Column& col = table.column(c);
    std::vector<double> freq(static_cast<size_t>(col.ndv()), 0.0);
    for (int32_t code : col.codes()) freq[static_cast<size_t>(code)] += inv_rows;
    std::vector<double>& cum = cum_[static_cast<size_t>(c)];
    cum.assign(static_cast<size_t>(col.ndv()) + 1, 0.0);
    for (int32_t k = 0; k < col.ndv(); ++k) {
      cum[static_cast<size_t>(k) + 1] = cum[static_cast<size_t>(k)] + freq[static_cast<size_t>(k)];
    }
  }
}

double IndependenceEstimator::EstimateSelectivity(const query::Query& query) {
  const auto ranges = query.PerColumnRanges(table_);
  double sel = 1.0;
  for (int c = 0; c < table_.num_columns(); ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    if (r.empty()) return 0.0;
    if (r.lo == 0 && r.hi == table_.column(c).ndv()) continue;
    const std::vector<double>& cum = cum_[static_cast<size_t>(c)];
    sel *= cum[static_cast<size_t>(r.hi)] - cum[static_cast<size_t>(r.lo)];
  }
  return sel;
}

double IndependenceEstimator::SizeMB() const {
  int64_t entries = 0;
  for (const auto& c : cum_) entries += static_cast<int64_t>(c.size());
  return static_cast<double>(entries) * 8.0 / (1024.0 * 1024.0);
}

}  // namespace duet::baselines
