// Naru baseline (Yang et al., VLDB 2020; paper Sec. V-A5 #6).
//
// A MADE/ResMADE autoregressive model over *tuple values*: input block i is
// the (wildcard-skippable) encoding of column i's value, output block i the
// distribution P(C_i | v_<i). Range queries are answered with progressive
// sampling: one forward pass per constrained column, each over `num_samples`
// Monte-Carlo samples — the O(n) inference cost, sampling variance and
// long-tail behaviour that Duet's single-pass design removes.
#ifndef DUET_BASELINES_NARU_NARU_MODEL_H_
#define DUET_BASELINES_NARU_NARU_MODEL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/duet_model.h"
#include "core/encoding.h"
#include "core/trainer.h"
#include "nn/made.h"
#include "nn/module.h"
#include "query/estimator.h"
#include "tensor/optimizer.h"

namespace duet::baselines {

/// Naru architecture + inference knobs.
struct NaruOptions {
  std::vector<int64_t> hidden_sizes = {256, 256};
  bool residual = false;
  core::EncodingOptions encoding;
  uint64_t seed = 1;
  /// Progressive-sampling budget per estimation (paper uses 2000; scaled
  /// default keeps CPU benches fast — it is a flag everywhere).
  int num_samples = 200;
  /// Wildcard-skipping probability during training.
  double wildcard_prob = 0.3;
};

/// Mixes a query's structure (columns, operators, value bits) into `base`;
/// the estimator adapters seed each query's progressive-sampling Rng with
/// this, which keeps single-query and batched estimation bit-identical.
uint64_t DeterministicQuerySeed(const query::Query& query, uint64_t base);

/// Naru model + progressive-sampling estimator.
class NaruModel : public nn::Module {
 public:
  NaruModel(const data::Table& table, NaruOptions options);

  // ----- training -----

  /// Cross-entropy of the anchor tuples with wildcard-skipping masking.
  /// Deterministic in `seed`.
  tensor::Tensor DataLoss(const std::vector<int64_t>& anchor_rows, uint64_t seed) const;

  // ----- inference -----

  /// Progressive sampling (unbiased, random): one forward pass per
  /// constrained column over options.num_samples samples.
  double EstimateSelectivity(const query::Query& query, Rng& rng) const;

  /// Deterministic wrapper: fresh Rng seeded from the query contents (the
  /// variance across seeds is measured by the stability experiment).
  double EstimateSelectivitySeeded(const query::Query& query, uint64_t seed) const;

  /// Batched progressive sampling. Queries share per-column rounds: all
  /// still-active queries constraining column c have their sample sets
  /// encoded into one forward pass, so a batch of B queries costs at most
  /// `num_columns` forwards instead of sum_q(constrained_q). Each query
  /// draws from its own Rng seeded with DeterministicQuerySeed(q, seed_base)
  /// in the same order as the scalar path, so results match per-query
  /// estimation exactly.
  std::vector<double> EstimateSelectivityBatch(const std::vector<query::Query>& queries,
                                               uint64_t seed_base) const;

  // ----- shared internals (UAE reuses these) -----

  /// Encodes a batch of (possibly wildcarded) code rows; codes: [b * N],
  /// -1 = wildcard.
  tensor::Tensor EncodeCodes(const std::vector<int32_t>& codes, int64_t batch) const;

  tensor::Tensor ForwardLogits(const tensor::Tensor& x) const { return made_->Forward(x); }

  const data::Table& table() const { return table_; }
  const core::NaruInputEncoder& encoder() const { return encoder_; }
  const nn::Made& made() const { return *made_; }

  /// Packed-weight backend for the no-grad sampling forwards (see
  /// tensor/packed_weights.h); forwarded to the MADE core.
  void SetInferenceBackend(tensor::WeightBackend backend) const override {
    made_->SetInferenceBackend(backend);
  }
  uint64_t CachedBytes() const override { return made_->CachedBytes(); }
  void SetPlanEnabled(bool enabled) const override { made_->SetPlanEnabled(enabled); }
  uint64_t PlanBytes() const override { return made_->PlanBytes(); }
  nn::PlanTelemetry PlanInfo() const override { return made_->PlanInfo(); }
  const NaruOptions& options() const { return options_; }
  /// Profiling accumulators. Read/Clear only while no estimation is in
  /// flight; accumulation is internally locked (serving-engine contract).
  core::PhaseTimes& phase_times() const { return phase_times_; }

 private:
  /// Locked accumulation into one PhaseTimes field.
  void AddPhaseTime(double core::PhaseTimes::*field, double ms) const {
    std::lock_guard<std::mutex> lock(*phase_mu_);
    phase_times_.*field += ms;
  }

  const data::Table& table_;
  NaruOptions options_;
  core::NaruInputEncoder encoder_;
  std::unique_ptr<nn::Made> made_;
  // Heap-held so the model stays movable.
  mutable std::unique_ptr<std::mutex> phase_mu_ = std::make_unique<std::mutex>();
  mutable core::PhaseTimes phase_times_;
};

/// Data-driven trainer for Naru (maximum likelihood over tuples).
class NaruTrainer {
 public:
  NaruTrainer(NaruModel& model, core::TrainOptions options);

  std::vector<core::EpochStats> Train(
      const std::function<void(const core::EpochStats&)>& on_epoch = {});
  core::EpochStats TrainEpoch(int epoch_index);

 private:
  NaruModel& model_;
  core::TrainOptions options_;
  tensor::Adam optimizer_;
  Rng rng_;
};

/// CardinalityEstimator adapter (deterministic per-query seeding, so the
/// same query always gets the same estimate and batching is order-free).
class NaruEstimator : public query::CardinalityEstimator {
 public:
  NaruEstimator(const NaruModel& model, std::string name = "Naru", uint64_t seed = 17)
      : model_(model), name_(std::move(name)), seed_(seed) {}

  double EstimateSelectivity(const query::Query& query) override {
    return model_.EstimateSelectivitySeeded(query, DeterministicQuerySeed(query, seed_));
  }
  std::vector<double> EstimateSelectivityBatch(
      const std::vector<query::Query>& queries) override {
    return model_.EstimateSelectivityBatch(queries, seed_);
  }
  void SetInferenceBackend(tensor::WeightBackend backend) override {
    model_.SetInferenceBackend(backend);
  }
  uint64_t PackedWeightBytes() const override { return model_.CachedBytes(); }
  void SetPlanEnabled(bool enabled) override { model_.SetPlanEnabled(enabled); }
  uint64_t PlanBytes() const override { return model_.PlanBytes(); }
  uint64_t PlanCompileMicros() const override { return model_.PlanInfo().compile_micros; }
  uint64_t PlanCacheHits() const override { return model_.PlanInfo().cache_hits; }
  std::string name() const override { return name_; }
  double SizeMB() const override { return model_.SizeMB(); }

 private:
  const NaruModel& model_;
  std::string name_;
  uint64_t seed_;
};

}  // namespace duet::baselines

#endif  // DUET_BASELINES_NARU_NARU_MODEL_H_
