#include "baselines/naru/naru_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/timer.h"
#include "tensor/ops.h"

namespace duet::baselines {

using tensor::Tensor;

namespace {

/// Rows per batched forward; bounds peak activation memory when many
/// queries' sample sets are concatenated. Whole queries only, so chunking
/// never changes any row's content.
constexpr int64_t kMaxRowsPerForward = 8192;

/// One progressive-sampling round: updates the `s` sample weights and draws
/// the next values for one query on column `c`, reading that query's logits
/// (`s` rows of `out_dim`). Shared verbatim by the scalar and batched paths
/// so they stay bit-identical.
void ProgressiveRound(const float* lp, int64_t out_dim, const tensor::BlockSpec& blk,
                      const query::CodeRange& r, int64_t s, int n, int c,
                      std::vector<double>& p, std::vector<int32_t>& samples, duet::Rng& rng) {
  for (int64_t i = 0; i < s; ++i) {
    if (p[static_cast<size_t>(i)] == 0.0) continue;
    const float* ls = lp + i * out_dim + blk.offset;
    float mx = ls[0];
    for (int64_t j = 1; j < blk.len; ++j) mx = std::max(mx, ls[j]);
    double denom = 0.0, mass = 0.0;
    for (int64_t j = 0; j < blk.len; ++j) {
      const double e = std::exp(static_cast<double>(ls[j] - mx));
      denom += e;
      if (j >= r.lo && j < r.hi) mass += e;
    }
    const double factor = mass / denom;
    p[static_cast<size_t>(i)] *= factor;
    if (factor <= 0.0) {
      p[static_cast<size_t>(i)] = 0.0;
      samples[static_cast<size_t>(i * n + c)] = r.lo;
      continue;
    }
    // Progressive step: draw the next value from the masked distribution.
    double u = rng.UniformDouble() * mass;
    int32_t chosen = r.hi - 1;
    for (int32_t j = r.lo; j < r.hi; ++j) {
      u -= std::exp(static_cast<double>(ls[j] - mx));
      if (u <= 0.0) {
        chosen = j;
        break;
      }
    }
    samples[static_cast<size_t>(i * n + c)] = chosen;
  }
}

}  // namespace

uint64_t DeterministicQuerySeed(const query::Query& query, uint64_t base) {
  uint64_t h = base ^ 0x9e3779b97f4a7c15ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const query::Predicate& p : query.predicates) {
    mix(static_cast<uint64_t>(p.col));
    mix(static_cast<uint64_t>(p.op));
    uint64_t bits = 0;
    std::memcpy(&bits, &p.value, sizeof(bits));
    mix(bits);
  }
  return h;
}

NaruModel::NaruModel(const data::Table& table, NaruOptions options)
    : table_(table), options_(std::move(options)), encoder_(table, options_.encoding) {
  Rng rng(options_.seed);
  nn::MadeOptions made_opt;
  made_opt.input_widths = encoder_.BlockWidths();
  made_opt.output_widths = table.ColumnNdvs();
  made_opt.hidden_sizes = options_.hidden_sizes;
  made_opt.residual = options_.residual;
  made_ = std::make_unique<nn::Made>(made_opt, rng);
  RegisterChild(*made_);
}

Tensor NaruModel::EncodeCodes(const std::vector<int32_t>& codes, int64_t batch) const {
  const int n = table_.num_columns();
  DUET_CHECK_EQ(static_cast<int64_t>(codes.size()), batch * n);
  const int64_t d = encoder_.total_width();
  Tensor x = Tensor::Zeros({batch, d});
  float* xp = x.data();
  for (int64_t r = 0; r < batch; ++r) {
    float* row = xp + r * d;
    for (int c = 0; c < n; ++c) {
      const int32_t code = codes[static_cast<size_t>(r * n + c)];
      if (code < 0) continue;  // wildcard block stays zero
      encoder_.EncodeValue(c, code, row + encoder_.block_offset(c));
    }
  }
  return x;
}

Tensor NaruModel::DataLoss(const std::vector<int64_t>& anchor_rows, uint64_t seed) const {
  const int64_t b = static_cast<int64_t>(anchor_rows.size());
  const int n = table_.num_columns();
  Rng rng(seed);
  std::vector<int32_t> inputs(static_cast<size_t>(b * n));
  std::vector<int32_t> labels(static_cast<size_t>(b * n));
  for (int64_t r = 0; r < b; ++r) {
    for (int c = 0; c < n; ++c) {
      const int32_t code = table_.code(anchor_rows[static_cast<size_t>(r)], c);
      labels[static_cast<size_t>(r * n + c)] = code;
      const bool wildcard =
          options_.wildcard_prob > 0.0 && rng.Bernoulli(options_.wildcard_prob);
      inputs[static_cast<size_t>(r * n + c)] = wildcard ? -1 : code;
    }
  }
  const Tensor x = EncodeCodes(inputs, b);
  const Tensor logits = made_->Forward(x);
  const Tensor logp = tensor::LogSoftmaxBlocks(logits, made_->output_blocks());
  return tensor::NllLossBlocks(logp, made_->output_blocks(), labels);
}

double NaruModel::EstimateSelectivity(const query::Query& query, Rng& rng) const {
  tensor::NoGradScope no_grad;
  const int n = table_.num_columns();
  const int64_t s = options_.num_samples;
  Timer timer;

  const auto ranges = query.PerColumnRanges(table_);
  for (const query::CodeRange& r : ranges) {
    if (r.empty()) return 0.0;
  }
  bool any_constrained = false;
  for (int c = 0; c < n; ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    if (!(r.lo == 0 && r.hi == table_.column(c).ndv())) any_constrained = true;
  }
  if (!any_constrained) return 1.0;

  std::vector<int32_t> samples(static_cast<size_t>(s * n), -1);
  std::vector<double> p(static_cast<size_t>(s), 1.0);
  AddPhaseTime(&core::PhaseTimes::encode_ms, timer.Millis());

  const auto& blocks = made_->output_blocks();
  for (int c = 0; c < n; ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    if (r.lo == 0 && r.hi == table_.column(c).ndv()) continue;  // wildcard skipping

    // Encode current partial samples + one forward pass (the O(n) cost).
    timer.Reset();
    const Tensor x = EncodeCodes(samples, s);
    AddPhaseTime(&core::PhaseTimes::encode_ms, timer.Millis());
    timer.Reset();
    const Tensor logits = made_->Forward(x);
    AddPhaseTime(&core::PhaseTimes::forward_ms, timer.Millis());

    timer.Reset();
    ProgressiveRound(logits.data(), made_->output_dim(), blocks[static_cast<size_t>(c)], r, s,
                     n, c, p, samples, rng);
    AddPhaseTime(&core::PhaseTimes::post_ms, timer.Millis());
  }

  double total = 0.0;
  for (double v : p) total += v;
  return total / static_cast<double>(s);
}

double NaruModel::EstimateSelectivitySeeded(const query::Query& query, uint64_t seed) const {
  Rng rng(seed);
  return EstimateSelectivity(query, rng);
}

std::vector<double> NaruModel::EstimateSelectivityBatch(
    const std::vector<query::Query>& queries, uint64_t seed_base) const {
  tensor::NoGradScope no_grad;
  const int n = table_.num_columns();
  const int64_t s = options_.num_samples;
  const int64_t b = static_cast<int64_t>(queries.size());
  std::vector<double> result(static_cast<size_t>(b), 1.0);

  // Per-query progressive-sampling state; queries that short-circuit
  // (contradiction -> 0, all-wildcard -> 1) never enter a round.
  struct QueryState {
    int64_t qi = 0;
    std::vector<query::CodeRange> ranges;
    std::vector<int32_t> samples;
    std::vector<double> p;
    Rng rng;
  };
  std::vector<QueryState> states;
  for (int64_t qi = 0; qi < b; ++qi) {
    const query::Query& q = queries[static_cast<size_t>(qi)];
    auto ranges = q.PerColumnRanges(table_);
    bool empty = false, any_constrained = false;
    for (int c = 0; c < n; ++c) {
      const query::CodeRange& r = ranges[static_cast<size_t>(c)];
      empty = empty || r.empty();
      if (!(r.lo == 0 && r.hi == table_.column(c).ndv())) any_constrained = true;
    }
    if (empty) {
      result[static_cast<size_t>(qi)] = 0.0;
      continue;
    }
    if (!any_constrained) continue;  // stays 1.0
    QueryState st;
    st.qi = qi;
    st.ranges = std::move(ranges);
    st.samples.assign(static_cast<size_t>(s * n), -1);
    st.p.assign(static_cast<size_t>(s), 1.0);
    st.rng = Rng(DeterministicQuerySeed(q, seed_base));
    states.push_back(std::move(st));
  }

  const auto& blocks = made_->output_blocks();
  const int64_t out_dim = made_->output_dim();
  const int64_t queries_per_chunk = std::max<int64_t>(1, kMaxRowsPerForward / s);
  std::vector<int32_t> codes;
  for (int c = 0; c < n; ++c) {
    // Round roster: every query constraining column c, in query order.
    std::vector<QueryState*> roster;
    for (QueryState& st : states) {
      const query::CodeRange& r = st.ranges[static_cast<size_t>(c)];
      if (!(r.lo == 0 && r.hi == table_.column(c).ndv())) roster.push_back(&st);
    }
    // One forward per chunk of whole queries: their sample sets concatenate
    // into a [chunk*s, input] batch, then each query consumes its own rows
    // and Rng exactly as the scalar path would.
    for (size_t begin = 0; begin < roster.size();
         begin += static_cast<size_t>(queries_per_chunk)) {
      const size_t end =
          std::min(roster.size(), begin + static_cast<size_t>(queries_per_chunk));
      codes.clear();
      for (size_t qi = begin; qi < end; ++qi) {
        codes.insert(codes.end(), roster[qi]->samples.begin(), roster[qi]->samples.end());
      }
      const Tensor x = EncodeCodes(codes, static_cast<int64_t>(end - begin) * s);
      const Tensor logits = made_->Forward(x);
      for (size_t qi = begin; qi < end; ++qi) {
        QueryState& st = *roster[qi];
        const float* lp = logits.data() + static_cast<int64_t>(qi - begin) * s * out_dim;
        ProgressiveRound(lp, out_dim, blocks[static_cast<size_t>(c)],
                         st.ranges[static_cast<size_t>(c)], s, n, c, st.p, st.samples,
                         st.rng);
      }
    }
  }

  for (const QueryState& st : states) {
    double total = 0.0;
    for (double v : st.p) total += v;
    result[static_cast<size_t>(st.qi)] = total / static_cast<double>(s);
  }
  return result;
}

NaruTrainer::NaruTrainer(NaruModel& model, core::TrainOptions options)
    : model_(model),
      options_(options),
      optimizer_(model.parameters(), options.learning_rate),
      rng_(options.seed) {}

core::EpochStats NaruTrainer::TrainEpoch(int epoch_index) {
  const data::Table& table = model_.table();
  const int64_t rows = table.num_rows();
  const int64_t bs = std::min<int64_t>(options_.batch_size, rows);
  Timer timer;
  std::vector<uint32_t> perm = rng_.Permutation(static_cast<uint32_t>(rows));
  core::EpochStats stats;
  stats.epoch = epoch_index;
  int64_t steps = 0, tuples = 0;
  for (int64_t begin = 0; begin + bs <= rows; begin += bs) {
    std::vector<int64_t> anchors(static_cast<size_t>(bs));
    for (int64_t i = 0; i < bs; ++i) {
      anchors[static_cast<size_t>(i)] = perm[static_cast<size_t>(begin + i)];
    }
    optimizer_.ZeroGrad();
    Tensor loss = model_.DataLoss(anchors, rng_());
    loss.Backward();
    optimizer_.Step();
    stats.data_loss += static_cast<double>(loss.item());
    ++steps;
    tuples += bs;
  }
  if (steps > 0) stats.data_loss /= static_cast<double>(steps);
  stats.seconds = timer.Seconds();
  stats.tuples_per_second =
      stats.seconds > 0.0 ? static_cast<double>(tuples) / stats.seconds : 0.0;
  return stats;
}

std::vector<core::EpochStats> NaruTrainer::Train(
    const std::function<void(const core::EpochStats&)>& on_epoch) {
  std::vector<core::EpochStats> history;
  for (int e = 0; e < options_.epochs; ++e) {
    history.push_back(TrainEpoch(e));
    if (on_epoch) on_epoch(history.back());
  }
  return history;
}

}  // namespace duet::baselines
