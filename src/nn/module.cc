#include "nn/module.h"

#include <algorithm>

#include "common/logging.h"

namespace duet::nn {

int64_t Module::NumParams() const {
  int64_t n = 0;
  for (const auto& p : params_) n += p.numel();
  return n;
}

double Module::SizeMB() const {
  return static_cast<double>(NumParams()) * 4.0 / (1024.0 * 1024.0);
}

void Module::Save(BinaryWriter& w) const {
  w.WriteU64(params_.size());
  for (const auto& p : params_) {
    w.WriteI64Vector(p.shape());
    w.WriteF32Vector(p.value_vector());
  }
}

void Module::Load(BinaryReader& r) {
  // Loaded weights replace the in-memory parameters wholesale through raw
  // data() pointers; any cache derived from them (e.g. the packed-weight
  // caches in nn::Linear / nn::MaskedLinear) is stale once this returns.
  tensor::ParameterMutationGuard mutation;
  const uint64_t n = r.ReadU64();
  DUET_CHECK_EQ(n, params_.size()) << "checkpoint does not match architecture";
  for (auto& p : params_) {
    const auto shape = r.ReadI64Vector();
    DUET_CHECK(shape == p.shape()) << "parameter shape mismatch";
    auto values = r.ReadF32Vector();
    DUET_CHECK_EQ(static_cast<int64_t>(values.size()), p.numel());
    std::copy(values.begin(), values.end(), p.data());
  }
}

void Module::CopyParametersFrom(const Module& src) {
  // Same invalidation contract as Load: parameters are replaced wholesale
  // through raw data() pointers, so any cache derived from them is stale
  // once this returns.
  tensor::ParameterMutationGuard mutation;
  DUET_CHECK_EQ(src.params_.size(), params_.size())
      << "source module does not match architecture";
  for (size_t i = 0; i < params_.size(); ++i) {
    const tensor::Tensor& from = src.params_[i];
    tensor::Tensor to = params_[i];
    DUET_CHECK(from.shape() == to.shape()) << "parameter shape mismatch";
    const std::vector<float>& values = from.value_vector();
    std::copy(values.begin(), values.end(), to.data());
  }
}

tensor::Tensor Module::RegisterParam(tensor::Tensor t) {
  t.impl()->requires_grad = true;
  params_.push_back(t);
  return t;
}

void Module::RegisterChild(Module& child) {
  for (const auto& p : child.params_) params_.push_back(p);
}

}  // namespace duet::nn
