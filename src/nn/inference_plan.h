// Compiled inference plans: a module's no-grad forward flattened into a
// packed-op program.
//
// The uncompiled inference path re-walks the module tree on every forward:
// virtual dispatch per layer, shape checks per op, one arena tensor per
// intermediate activation, and a per-layer packed-weights cache lookup
// (mutex + version compare). None of that work depends on the input — the
// structure of a frozen network is a compile-time constant. An
// InferencePlan resolves all of it once: `Module::Compile(backend)` walks
// Mlp / Made / ResMADE and emits a flat std::vector<PackedOp> program where
// every op carries its packed-weight handle (with the degree-sorted output
// permutation applied to masked layers — see tensor/packed_weights.h), a
// shared bias handle, a fused activation, and pre-resolved scratch-slab
// ids. Executing the plan is a tight loop over ops writing into a small set
// of per-thread ping-pong slabs: zero virtual calls, zero allocations in
// steady state, zero per-layer cache lookups, one output tensor per
// forward.
//
// Numerics: plans execute the exact same kernels as the uncompiled packed
// path (tensor/packed_weights.cc, shared epilogue in ops.cc), so dense and
// CSR plans are bitwise-equal to the uncompiled forward; int8/f16 carry the
// same accuracy bounds as their backends.
//
// Caching & invalidation (the PR-3 packed-weights rules, lifted to whole
// programs): a module caches one plan per (backend, ParameterVersion) in an
// InferencePlanCache. The cached plan is stamped with
// tensor::ParameterVersion() and recompiled lazily whenever the global
// counter moved (optimizer step, Module::Load, ParameterMutationGuard) or
// the requested backend changed. Publication is an atomic pointer swap
// under the cache mutex: a concurrent forward either holds the old
// immutable plan or the new one, never a torn view — which also makes a
// whole forward atomic with respect to SetInferenceBackend (the uncompiled
// path can mix backends across layers mid-switch; a plan cannot).
//
// Thread-safety: a compiled plan is immutable and safe to execute from any
// number of threads (execution scratch is thread_local). The cache follows
// the layer-cache contract: concurrent forwards are safe while the owning
// module's parameters are unchanging; updating THEM concurrently is never
// synchronized — online updates train a clone and publish it as a frozen
// snapshot whose plan cache is pinned to the freeze-time version
// (snapshot_id below), immune to the version bumps the clone's training
// emits (see serve/model_registry.h).
#ifndef DUET_NN_INFERENCE_PLAN_H_
#define DUET_NN_INFERENCE_PLAN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/packed_weights.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// One step of a compiled program. Slab ids refer to the plan's per-thread
/// scratch slabs; InferencePlan::kInputSlab / kOutputSlab alias the caller's
/// input / output buffers.
struct PackedOp {
  enum class Kind : int32_t {
    kLinear = 0,  ///< dst = act(src x W_packed + bias)
    kRelu = 1,    ///< dst[i] = max(src[i], 0)   (ResMADE pre-activation)
    kAdd = 2,     ///< dst[i] = src[i] + src2[i] (ResMADE skip connection)
  };
  Kind kind = Kind::kLinear;
  int src = 0;
  int src2 = -1;  ///< kAdd only
  int dst = 0;
  int64_t in = 0;   ///< input width read from src
  int64_t out = 0;  ///< output width written to dst
  /// kLinear: the packed effective weight (owned by the plan; permuted for
  /// masked layers) and the layer's bias (shared handle — biases are never
  /// copied, the gathering epilogue indexes them in original column order).
  std::shared_ptr<const tensor::PackedWeights> weights;
  tensor::Tensor bias;
  tensor::Activation act = tensor::Activation::kNone;
  /// True when `weights` shares the layer's parameter tensor handle
  /// (unpermuted dense packs over plain Linear weights): such ops add no
  /// weight memory and are excluded from bytes().
  bool weights_shared = false;
};

/// An immutable compiled program: Execute() runs the flattened forward.
class InferencePlan {
 public:
  static constexpr int kInputSlab = -1;
  static constexpr int kOutputSlab = -2;

  /// x: [B, input_dim] -> [B, output_dim]. Inference-only (asserts no-grad);
  /// allocates exactly one output tensor (arena-pooled under NoGradScope).
  tensor::Tensor Execute(const tensor::Tensor& x) const;

  /// Raw-buffer form: overwrites out[batch * output_dim]. Scratch slabs are
  /// thread_local, so concurrent executions never share state.
  void ExecuteInto(const float* x, int64_t batch, float* out) const;

  tensor::WeightBackend backend() const { return backend_; }
  int64_t input_dim() const { return input_dim_; }
  int64_t output_dim() const { return output_dim_; }
  const std::vector<PackedOp>& ops() const { return ops_; }
  /// Scratch slabs a forward ping-pongs through (2 for plain MADE / MLP
  /// programs, 3 for ResMADE where the skip connection stays live).
  int num_slabs() const { return num_slabs_; }
  /// Per-slab row width (max intermediate width); serialized into snapshot
  /// artifacts so a loaded plan executes with identical scratch layout.
  int64_t slab_width() const { return slab_width_; }
  /// Bytes held by the plan's packed weights (+ permutation metadata);
  /// shared bias/parameter handles count 0.
  uint64_t bytes() const;

  /// Reassembles a plan from already-resolved parts (ops carry PHYSICAL slab
  /// ids, i.e. post-Finish form). This is the artifact loader's entry point
  /// (artifact/artifact.h): the writer serializes a Finish()-ed program and
  /// the loader rebuilds it verbatim around mmap-backed packs — no
  /// re-planning, no slab reassignment, so execution order and scratch
  /// layout are byte-for-byte those of the original plan. The loader
  /// validates structure before calling; the checks here are last-resort.
  static std::shared_ptr<const InferencePlan> FromParts(std::vector<PackedOp> ops,
                                                        int num_slabs, int64_t slab_width,
                                                        int64_t input_dim, int64_t output_dim,
                                                        tensor::WeightBackend backend);

 private:
  friend class PlanBuilder;
  std::vector<PackedOp> ops_;
  int num_slabs_ = 0;
  int64_t slab_width_ = 0;  ///< per-slab row width (max intermediate width)
  int64_t input_dim_ = 0;
  int64_t output_dim_ = 0;
  tensor::WeightBackend backend_ = tensor::WeightBackend::kDenseF32;
};

/// Builds an InferencePlan from a module's layer walk. Ops are appended in
/// execution order against SSA-style value ids; Finish() assigns values to
/// physical slabs (greedy reuse at last use, with elementwise ops allowed
/// to alias their inputs) and returns the immutable plan.
class PlanBuilder {
 public:
  /// kInput is the value id of the caller's input buffer.
  static constexpr int kInput = InferencePlan::kInputSlab;

  PlanBuilder(tensor::WeightBackend backend, int64_t input_dim);

  /// Appends dst = act(src x W + bias) and returns dst's value id.
  /// `effective_weight` is the [in, out] matrix the layer multiplies by
  /// (W o M for masked layers, W for plain ones) — a materialized non-pooled
  /// tensor the pack may adopt. With `permute_outputs` the degree-sorted
  /// output permutation is derived from the weight's structural zeros and
  /// applied to the pack (identity permutations are dropped).
  /// `weight_is_parameter` marks effective_weight as the layer's live
  /// parameter tensor: unpermuted dense packs then share the handle and are
  /// excluded from plan bytes.
  int Linear(int src, const tensor::Tensor& effective_weight, const tensor::Tensor& bias,
             tensor::Activation act, bool permute_outputs, bool weight_is_parameter);

  /// Appends dst[i] = max(src[i], 0) and returns dst's value id.
  int Relu(int src);

  /// Appends dst[i] = a[i] + b[i] and returns dst's value id.
  int Add(int a, int b);

  /// Assigns slabs and seals the plan; `output` must be the last appended
  /// value (it is routed to the caller's output buffer).
  std::shared_ptr<const InferencePlan> Finish(int output);

 private:
  int64_t WidthOf(int value) const;

  tensor::WeightBackend backend_;
  int64_t input_dim_;
  std::vector<int64_t> value_width_;  // per value id
  std::vector<PackedOp> ops_;         // src/dst hold value ids until Finish
};

/// Per-module compiled-plan cache slot (the plan analogue of
/// PackedWeightsCache in nn/layers.h). `version` stamps the
/// tensor::ParameterVersion() under which `plan` was compiled; the slot is
/// recompiled under `mu` whenever the counter moved or `requested` changed,
/// and a fresh plan is published as a new shared_ptr so concurrent readers
/// holding the previous plan are never invalidated mid-forward.
/// Heap-allocated by owners so modules stay movable.
struct InferencePlanCache {
  std::mutex mu;
  std::shared_ptr<const InferencePlan> plan;
  uint64_t version = 0;
  /// Snapshot pin (guarded by mu): nonzero id means the owning module's
  /// parameters are frozen (Module::FreezeInferenceCaches) and the slot
  /// belongs to that snapshot — lookups then validate against the frozen
  /// `snapshot_version` instead of the moving global counter, so optimizer
  /// steps on other (cloned) models can never invalidate this plan.
  uint64_t snapshot_id = 0;
  uint64_t snapshot_version = 0;
  /// Backend selected by SetInferenceBackend (release-stored there,
  /// acquire-loaded per forward; see the publication note in nn/layers.h).
  std::atomic<tensor::WeightBackend> requested{tensor::WeightBackend::kDenseF32};
  /// SetPlanEnabled toggle; checked per no-grad forward.
  std::atomic<bool> enabled{true};
  // Telemetry (PlanTelemetry snapshot source).
  std::atomic<uint64_t> compiles{0};
  std::atomic<uint64_t> compile_micros{0};
  std::atomic<uint64_t> hits{0};

  PlanTelemetry Snapshot() const {
    PlanTelemetry t;
    t.compiles = compiles.load(std::memory_order_relaxed);
    t.compile_micros = compile_micros.load(std::memory_order_relaxed);
    t.cache_hits = hits.load(std::memory_order_relaxed);
    return t;
  }
};

/// Cache-coherent plan lookup: returns the cached plan when its version and
/// backend are current (counting a hit), otherwise invokes `compile` under
/// the cache mutex, times it, publishes and returns the fresh plan. For a
/// pinned cache (PinPlanCache) the reference version is the frozen
/// snapshot version, never the moving global counter. This is the single
/// implementation of the invalidation rules shared by every plan-compiling
/// module.
std::shared_ptr<const InferencePlan> GetOrCompilePlan(
    InferencePlanCache& cache,
    const std::function<std::shared_ptr<const InferencePlan>(tensor::WeightBackend)>& compile);

/// Pins `cache` to a snapshot (see InferencePlanCache::snapshot_id). Called
/// by plan-compiling modules from FreezeInferenceCaches.
void PinPlanCache(InferencePlanCache& cache, const tensor::SnapshotStamp& stamp);

}  // namespace duet::nn

#endif  // DUET_NN_INFERENCE_PLAN_H_
