#include "nn/inference_plan.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "serve/fault_injector.h"

namespace duet::nn {

using tensor::Tensor;

namespace {

/// Elementwise work threshold: these ops are memory-bound, so only large
/// batches benefit from the pool (numerics are element-independent either
/// way).
inline bool ElementwiseParallel(int64_t n) { return n > (1 << 16); }

}  // namespace

std::shared_ptr<const InferencePlan> InferencePlan::FromParts(
    std::vector<PackedOp> ops, int num_slabs, int64_t slab_width, int64_t input_dim,
    int64_t output_dim, tensor::WeightBackend backend) {
  DUET_CHECK(!ops.empty());
  DUET_CHECK_GE(num_slabs, 0);
  DUET_CHECK_GT(input_dim, 0);
  DUET_CHECK_GT(output_dim, 0);
  for (const PackedOp& op : ops) {
    DUET_CHECK(op.src >= kOutputSlab && op.src < num_slabs);
    DUET_CHECK(op.dst >= kOutputSlab && op.dst < num_slabs);
    DUET_CHECK_LE(op.in, op.src == kInputSlab ? input_dim : slab_width);
    if (op.kind == PackedOp::Kind::kLinear) DUET_CHECK(op.weights != nullptr);
    if (op.kind == PackedOp::Kind::kAdd) {
      DUET_CHECK(op.src2 >= kOutputSlab && op.src2 < num_slabs);
    }
  }
  auto plan = std::make_shared<InferencePlan>();
  plan->ops_ = std::move(ops);
  plan->num_slabs_ = num_slabs;
  plan->slab_width_ = slab_width;
  plan->input_dim_ = input_dim;
  plan->output_dim_ = output_dim;
  plan->backend_ = backend;
  return plan;
}

uint64_t InferencePlan::bytes() const {
  uint64_t total = 0;
  for (const PackedOp& op : ops_) {
    if (op.weights && !op.weights_shared) total += op.weights->bytes();
  }
  return total;
}

Tensor InferencePlan::Execute(const Tensor& x) const {
  DUET_CHECK(!tensor::NoGradGuard::GradEnabled())
      << "InferencePlan::Execute is inference-only (no autograd graph)";
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(x.dim(1), input_dim_);
  const int64_t batch = x.dim(0);
  Tensor out = Tensor::Zeros({batch, output_dim_});
  ExecuteInto(x.data(), batch, out.data());
  return out;
}

void InferencePlan::ExecuteInto(const float* x, int64_t batch, float* out) const {
  // Per-thread scratch: a forward runs entirely inside these slabs, so the
  // steady state performs zero allocations and concurrent executions (the
  // serving engine's sharded workers) never share state.
  thread_local std::vector<float> slabs;
  const size_t need =
      static_cast<size_t>(num_slabs_) * static_cast<size_t>(batch) * static_cast<size_t>(slab_width_);
  if (slabs.size() < need) slabs.resize(need);
  const int64_t slab_stride = batch * slab_width_;
  auto buffer = [&](int id, float* output_buf, const float* input_buf) -> const float* {
    if (id == kInputSlab) return input_buf;
    if (id == kOutputSlab) return output_buf;
    return slabs.data() + static_cast<size_t>(id) * slab_stride;
  };

  for (const PackedOp& op : ops_) {
    const float* src = buffer(op.src, out, x);
    float* dst = const_cast<float*>(buffer(op.dst, out, x));
    switch (op.kind) {
      case PackedOp::Kind::kLinear:
        tensor::PackedLinearForward(*op.weights, src, batch, op.bias.data(), op.act, dst);
        break;
      case PackedOp::Kind::kRelu: {
        const int64_t n = batch * op.out;
        ParallelForChunked(
            0, n,
            [&](int64_t lo, int64_t hi) {
#pragma omp simd
              for (int64_t i = lo; i < hi; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
            },
            ElementwiseParallel(n), /*grain=*/4096);
        break;
      }
      case PackedOp::Kind::kAdd: {
        const float* src2 = buffer(op.src2, out, x);
        const int64_t n = batch * op.out;
        ParallelForChunked(
            0, n,
            [&](int64_t lo, int64_t hi) {
#pragma omp simd
              for (int64_t i = lo; i < hi; ++i) dst[i] = src[i] + src2[i];
            },
            ElementwiseParallel(n), /*grain=*/4096);
        break;
      }
    }
  }
}

PlanBuilder::PlanBuilder(tensor::WeightBackend backend, int64_t input_dim)
    : backend_(backend), input_dim_(input_dim) {
  DUET_CHECK_GT(input_dim, 0);
}

int64_t PlanBuilder::WidthOf(int value) const {
  if (value == kInput) return input_dim_;
  DUET_CHECK_GE(value, 0);
  DUET_CHECK_LT(static_cast<size_t>(value), value_width_.size());
  return value_width_[static_cast<size_t>(value)];
}

int PlanBuilder::Linear(int src, const Tensor& effective_weight, const Tensor& bias,
                        tensor::Activation act, bool permute_outputs,
                        bool weight_is_parameter) {
  DUET_CHECK_EQ(effective_weight.ndim(), 2);
  DUET_CHECK_EQ(effective_weight.dim(0), WidthOf(src));
  DUET_CHECK_EQ(bias.ndim(), 1);
  DUET_CHECK_EQ(bias.dim(0), effective_weight.dim(1));

  PackedOp op;
  op.kind = PackedOp::Kind::kLinear;
  op.src = src;
  op.in = effective_weight.dim(0);
  op.out = effective_weight.dim(1);
  op.bias = bias;  // shared handle; the epilogue indexes original columns
  op.act = act;
  std::vector<int32_t> perm;
  if (permute_outputs) perm = tensor::DegreeSortPermutation(effective_weight);
  op.weights = tensor::PackWeights(effective_weight, backend_, perm.empty() ? nullptr : &perm);
  op.weights_shared = weight_is_parameter && !op.weights->permuted() &&
                      backend_ == tensor::WeightBackend::kDenseF32;

  op.dst = static_cast<int>(value_width_.size());
  value_width_.push_back(op.out);
  ops_.push_back(std::move(op));
  return ops_.back().dst;
}

int PlanBuilder::Relu(int src) {
  PackedOp op;
  op.kind = PackedOp::Kind::kRelu;
  op.src = src;
  op.in = op.out = WidthOf(src);
  op.dst = static_cast<int>(value_width_.size());
  value_width_.push_back(op.out);
  ops_.push_back(std::move(op));
  return ops_.back().dst;
}

int PlanBuilder::Add(int a, int b) {
  DUET_CHECK_EQ(WidthOf(a), WidthOf(b));
  PackedOp op;
  op.kind = PackedOp::Kind::kAdd;
  op.src = a;
  op.src2 = b;
  op.in = op.out = WidthOf(a);
  op.dst = static_cast<int>(value_width_.size());
  value_width_.push_back(op.out);
  ops_.push_back(std::move(op));
  return ops_.back().dst;
}

std::shared_ptr<const InferencePlan> PlanBuilder::Finish(int output) {
  DUET_CHECK(!ops_.empty());
  DUET_CHECK_EQ(output, ops_.back().dst) << "output must be the last appended value";

  // Last use of each value id (ops are in execution order).
  std::vector<int> last_use(value_width_.size(), -1);
  auto note = [&](int value, int op_index) {
    if (value >= 0) last_use[static_cast<size_t>(value)] = op_index;
  };
  for (size_t i = 0; i < ops_.size(); ++i) {
    note(ops_[i].src, static_cast<int>(i));
    note(ops_[i].src2, static_cast<int>(i));
  }

  // Greedy slab assignment with reuse at last use. Elementwise ops (Relu,
  // Add) may write in place over an input that dies here; Linear reads its
  // whole input per output element, so its dst must not alias a live input —
  // inputs are released only after its allocation.
  auto plan = std::make_shared<InferencePlan>();
  std::vector<int> value_slab(value_width_.size(), -1);
  std::vector<bool> slab_free;
  auto acquire = [&]() -> int {
    for (size_t s = 0; s < slab_free.size(); ++s) {
      if (slab_free[s]) {
        slab_free[s] = false;
        return static_cast<int>(s);
      }
    }
    slab_free.push_back(false);
    return static_cast<int>(slab_free.size()) - 1;
  };
  auto release = [&](int value, int op_index) {
    if (value >= 0 && last_use[static_cast<size_t>(value)] == op_index &&
        value_slab[static_cast<size_t>(value)] >= 0) {
      slab_free[static_cast<size_t>(value_slab[static_cast<size_t>(value)])] = true;
    }
  };
  auto slab_of = [&](int value) -> int {
    if (value == kInput) return InferencePlan::kInputSlab;
    return value_slab[static_cast<size_t>(value)];
  };

  for (size_t i = 0; i < ops_.size(); ++i) {
    PackedOp& op = ops_[i];
    const int src_slab = slab_of(op.src);
    const int src2_slab = op.src2 >= 0 ? slab_of(op.src2) : -1;
    const bool alias_safe = op.kind != PackedOp::Kind::kLinear;
    const int oi = static_cast<int>(i);
    if (alias_safe) {
      release(op.src, oi);
      release(op.src2, oi);
    }
    if (op.dst == output) {
      value_slab[static_cast<size_t>(op.dst)] = InferencePlan::kOutputSlab;
    } else {
      value_slab[static_cast<size_t>(op.dst)] = acquire();
    }
    if (!alias_safe) {
      release(op.src, oi);
      release(op.src2, oi);
    }
    const int dst_slab = value_slab[static_cast<size_t>(op.dst)];
    op.src = src_slab;
    op.src2 = src2_slab;
    op.dst = dst_slab;
  }

  plan->ops_ = std::move(ops_);
  plan->num_slabs_ = static_cast<int>(slab_free.size());
  plan->slab_width_ = 0;
  for (size_t v = 0; v < value_width_.size(); ++v) {
    if (value_slab[v] >= 0) plan->slab_width_ = std::max(plan->slab_width_, value_width_[v]);
  }
  plan->input_dim_ = input_dim_;
  plan->output_dim_ = value_width_[static_cast<size_t>(output)];
  plan->backend_ = backend_;
  return plan;
}

std::shared_ptr<const InferencePlan> GetOrCompilePlan(
    InferencePlanCache& cache,
    const std::function<std::shared_ptr<const InferencePlan>(tensor::WeightBackend)>&
        compile) {
  const tensor::WeightBackend backend = cache.requested.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(cache.mu);
  // Pinned caches belong to an immutable snapshot: validate against the
  // frozen version, not the global counter another model's training moves.
  const uint64_t version =
      cache.snapshot_id != 0 ? cache.snapshot_version : tensor::ParameterVersion();
  if (cache.plan && cache.version == version && cache.plan->backend() == backend) {
    cache.hits.fetch_add(1, std::memory_order_relaxed);
    return cache.plan;
  }
  Timer timer;
  // Fault point: plan compilation happens lazily under the cache lock; a
  // throw here propagates out of the forward that triggered it and must be
  // absorbed by the serving layer's shard catch (the cache keeps its
  // previous plan — the swap below never ran).
  serve::FaultInjector::MaybeThrow(serve::FaultPoint::kPlanCompile,
                                   "injected plan-compile failure");
  std::shared_ptr<const InferencePlan> plan = compile(backend);
  DUET_CHECK(plan != nullptr);
  // Atomic publication: the shared_ptr swap under `mu` means a concurrent
  // forward holds either the previous immutable plan or this one — a
  // backend switch or parameter bump can never hand out a torn view.
  cache.plan = plan;
  cache.version = version;
  cache.compiles.fetch_add(1, std::memory_order_relaxed);
  cache.compile_micros.fetch_add(static_cast<uint64_t>(timer.Micros()),
                                 std::memory_order_relaxed);
  return plan;
}

void PinPlanCache(InferencePlanCache& cache, const tensor::SnapshotStamp& stamp) {
  DUET_CHECK_NE(stamp.id, 0u) << "snapshot id 0 means 'not a snapshot'";
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.snapshot_id = stamp.id;
  cache.snapshot_version = stamp.parameter_version;
  // A plan compiled under the freeze-time version already packed the frozen
  // weights and keeps hitting (pinned lookups compare against
  // snapshot_version). Anything older is stale — compiled before the last
  // mutation — and must be dropped, not restamped: the pin removes the
  // global-counter comparison that would otherwise have caught it.
  if (cache.plan && cache.version != stamp.parameter_version) {
    cache.plan.reset();
    cache.version = 0;
  }
}

}  // namespace duet::nn
