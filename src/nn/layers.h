// Core layers: Linear, MaskedLinear (MADE building block), MLP, Embedding,
// LSTMCell (used by the RNN variant of Duet's MPSN).
#ifndef DUET_NN_LAYERS_H_
#define DUET_NN_LAYERS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "nn/inference_plan.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/packed_weights.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// Packed-weights cache slot shared by Linear and MaskedLinear (inference
/// only). `version` is the tensor::ParameterVersion() stamp under which
/// `packed` was built; 0 means never built. The slot is rebuilt whenever the
/// global counter moves (optimizer step, checkpoint load, any
/// ParameterMutationGuard) or the requested backend changes, under `mu`; a
/// rebuilt pack is published as a fresh shared_ptr, so readers holding the
/// previous pack are never invalidated mid-forward. Heap-allocated so
/// layers stay movable (std::mutex is not) — MADE stores layers in vectors.
///
/// SetInferenceBackend vs concurrent Forward: `requested` is written with
/// release order and read with acquire order, and every pack/plan is
/// published as a fresh immutable shared_ptr under `mu` — so a backend
/// switch racing in-flight forwards can never hand out a torn pack; each
/// forward observes either the old or the new backend's pack, both valid.
/// What the layer-level caches do NOT guarantee under such a race is that
/// one multi-layer forward uses a single backend throughout (each layer
/// resolves independently, so a mid-switch forward may mix backends across
/// layers — every layer's output is still a valid value for its backend).
/// Compiled plans (nn/inference_plan.h) close that gap: a planned forward
/// resolves its backend exactly once. Either way, configure a model before
/// sharing it with serving threads; published snapshots are configured
/// exactly once, at publish time (serve/model_registry.h).
///
/// Snapshot pinning: `snapshot_id`/`snapshot_version` (guarded by mu) are
/// set by FreezeInferenceCaches when the owning layer's parameters are
/// declared permanently frozen. A pinned slot validates its pack against
/// the frozen version instead of the moving global ParameterVersion(), so
/// optimizer steps on *other* models (a background fine-tune of a clone)
/// can never invalidate it — the multi-version rule that lets training and
/// serving run concurrently on decoupled model instances.
struct PackedWeightsCache {
  std::mutex mu;
  std::shared_ptr<const tensor::PackedWeights> packed;
  uint64_t version = 0;
  /// Snapshot pin (guarded by mu); id 0 = live/mutable layer.
  uint64_t snapshot_id = 0;
  uint64_t snapshot_version = 0;
  /// Backend selected by SetInferenceBackend (release-store) and read on
  /// every no-grad forward (acquire-load).
  std::atomic<tensor::WeightBackend> requested{tensor::WeightBackend::kDenseF32};
};

/// Fully connected layer y = x W + b with PyTorch-style U(-1/sqrt(I), ..)
/// initialization. W is stored [in, out] to match tensor::MatMul.
///
/// Inference backends: with gradients disabled, Forward dispatches on the
/// backend chosen via SetInferenceBackend. kDenseF32 (default) multiplies
/// by W directly — no cache, no extra memory, bitwise-identical to the
/// tracked math. kCsrF32 / kInt8 serve a packed form of W from the
/// packed-weights cache (same coherence rules as MaskedLinear below); CSR
/// on an unmasked dense weight stores every entry and is only useful for
/// uniformity, int8 quarters the streamed weight bytes.
class Linear : public Module {
 public:
  Linear(int64_t in, int64_t out, Rng& rng);

  /// Fused act(x W + b); kNone gives the plain affine layer.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         tensor::Activation act = tensor::Activation::kNone) const;

  void SetInferenceBackend(tensor::WeightBackend backend) const override;
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const override;
  /// Bytes held by the packed cache (0 until a non-dense no-grad forward).
  uint64_t CachedBytes() const override;

  /// Frees the cached pack (rebuilt lazily on the next cache-path forward).
  /// Containers call this when a compiled plan takes over the no-grad path
  /// and the per-layer pack would sit allocated unused.
  void DropPackedCache() const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  const tensor::Tensor& weight() const { return w_; }
  const tensor::Tensor& bias() const { return b_; }

  /// Non-pooled copy of W for plan compilation (plain layers: the effective
  /// weight IS the parameter; dense plans share the live handle instead).
  tensor::Tensor EffectiveWeightCopy() const;

 private:
  /// Returns the packed W for the requested backend, repacking if the
  /// parameter version moved or the backend changed.
  std::shared_ptr<const tensor::PackedWeights> PackedWeight() const;

  int64_t in_;
  int64_t out_;
  tensor::Tensor w_;
  tensor::Tensor b_;
  std::unique_ptr<PackedWeightsCache> cache_;
};

/// Linear layer whose weight is elementwise-gated by a constant binary mask
/// (the MADE connectivity constraint): y = x (W o M) + b.
///
/// Inference-side packed-weights cache: when gradient tracking is off
/// (NoGradGuard / NoGradScope — every estimator inference path), Forward
/// serves a cached pack of the effective weight W o M instead of recomputing
/// the elementwise product on every call. At batch 1 that product dominates
/// the forward pass (~95% of estimation latency, see docs/architecture.md),
/// so the cache is what makes single-query serving latency flat. The pack
/// format follows SetInferenceBackend: kDenseF32 (default) materializes
/// W o M exactly as the PR-2 masked-weight cache did — bitwise-identical
/// forwards; kCsrF32 stores only the ~50% nonzero entries and is also
/// bitwise-identical (k-ascending accumulation, only zeros skipped); kInt8
/// quantizes per output channel and is accuracy-bounded, not exact.
///
/// Cache coherence: the cached pack is stamped with
/// tensor::ParameterVersion() and rebuilt whenever the global counter has
/// moved — i.e. after any optimizer Step(), Module::Load(), or scope holding
/// a tensor::ParameterMutationGuard. Code mutating W through a raw data()
/// pointer must hold such a guard (or call tensor::BumpParameterVersion()).
/// A backend change likewise triggers a lazy repack on the next forward.
/// The cached pack is allocated outside the inference arena, so it may
/// outlive any NoGradScope and be shared across threads.
///
/// Thread-safety: Forward is safe to call concurrently from many threads
/// while parameters are frozen (the cache is rebuilt under an internal
/// mutex, and a rebuilt pack is published atomically as a fresh immutable
/// shared_ptr). Concurrent parameter *updates* of THIS layer are never
/// synchronized with in-flight forwards — which is why online serving
/// never trains a served model in place: updates go to a clone that is
/// frozen (FreezeInferenceCaches) and published as an immutable snapshot,
/// while the served instance's pinned caches ignore the version bumps the
/// clone's training emits (serve/model_registry.h).
class MaskedLinear : public Module {
 public:
  /// `mask` must be an [in, out] tensor of 0/1 floats.
  MaskedLinear(int64_t in, int64_t out, tensor::Tensor mask, Rng& rng);

  /// Fused act(x (W o M) + b); kNone gives the plain affine layer. With
  /// gradients enabled the product W o M is part of the graph (so W trains);
  /// with gradients disabled it is served from the packed-weights cache.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         tensor::Activation act = tensor::Activation::kNone) const;

  void SetInferenceBackend(tensor::WeightBackend backend) const override;
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const override;
  /// Bytes held by the packed cache (0 until the first no-grad forward).
  /// This is the cache's memory cost on top of the fp32 parameters: the
  /// dense backend doubles a layer's weight memory, CSR halves the extra
  /// copy (~50% structural zeros), int8 quarters it, f16 halves it.
  uint64_t CachedBytes() const override;

  /// Frees the cached pack (rebuilt lazily on the next cache-path forward);
  /// see Linear::DropPackedCache.
  void DropPackedCache() const;

  const tensor::Tensor& mask() const { return mask_; }
  const tensor::Tensor& weight() const { return w_; }
  const tensor::Tensor& bias() const { return b_; }

  /// Materializes W o M into a fresh non-pooled tensor (what inference
  /// multiplies by); plan compilation packs from this.
  tensor::Tensor EffectiveWeightCopy() const;

 private:
  /// Returns the packed W o M for the requested backend, rebuilding it if
  /// the parameter version moved or the backend changed.
  std::shared_ptr<const tensor::PackedWeights> PackedEffectiveWeight() const;

  int64_t in_;
  int64_t out_;
  tensor::Tensor w_;
  tensor::Tensor b_;
  tensor::Tensor mask_;  // constant
  std::unique_ptr<PackedWeightsCache> cache_;
};

/// Plain ReLU MLP; `sizes` = {in, h1, ..., out}. No activation after the
/// final layer.
///
/// No-grad forwards execute through a compiled inference plan by default
/// (see nn/inference_plan.h): the layer loop is flattened once per
/// (backend, parameter version) into a packed-op program — bitwise-equal to
/// the layer-by-layer path for dense, and routing the whole forward through
/// one atomically published program (a backend switch can never mix
/// backends inside one planned forward). SetPlanEnabled(false) restores the
/// PR-3 per-layer path.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& sizes, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

  void SetInferenceBackend(tensor::WeightBackend backend) const override;
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const override;
  /// Layer packed caches + compiled plan bytes.
  uint64_t CachedBytes() const override;

  std::shared_ptr<const InferencePlan> Compile(tensor::WeightBackend backend) const override;
  void SetPlanEnabled(bool enabled) const override;
  uint64_t PlanBytes() const override;
  PlanTelemetry PlanInfo() const override;

 private:
  std::vector<Linear> layers_;
  std::unique_ptr<InferencePlanCache> plan_cache_;
};

/// Embedding table: rows of a [num_embeddings, dim] matrix.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng);

  tensor::Tensor Forward(const std::vector<int32_t>& idx) const;

  int64_t dim() const { return dim_; }
  const tensor::Tensor& weight() const { return w_; }

 private:
  int64_t dim_;
  tensor::Tensor w_;
};

/// Single LSTM cell; state is carried explicitly by the caller.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input, int64_t hidden, Rng& rng);

  struct State {
    tensor::Tensor h;
    tensor::Tensor c;
  };

  /// Zero state for a batch.
  State InitialState(int64_t batch) const;

  /// One step: returns the new state.
  State Forward(const tensor::Tensor& x, const State& prev) const;

  int64_t hidden() const { return hidden_; }

 private:
  int64_t hidden_;
  tensor::Tensor wx_;  // [input, 4H]
  tensor::Tensor wh_;  // [hidden, 4H]
  tensor::Tensor b_;   // [4H]
};

}  // namespace duet::nn

#endif  // DUET_NN_LAYERS_H_
