// Core layers: Linear, MaskedLinear (MADE building block), MLP, Embedding,
// LSTMCell (used by the RNN variant of Duet's MPSN).
#ifndef DUET_NN_LAYERS_H_
#define DUET_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// Fully connected layer y = x W + b with PyTorch-style U(-1/sqrt(I), ..)
/// initialization. W is stored [in, out] to match tensor::MatMul.
class Linear : public Module {
 public:
  Linear(int64_t in, int64_t out, Rng& rng);

  /// Fused act(x W + b); kNone gives the plain affine layer.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         tensor::Activation act = tensor::Activation::kNone) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  const tensor::Tensor& weight() const { return w_; }
  const tensor::Tensor& bias() const { return b_; }

 private:
  int64_t in_;
  int64_t out_;
  tensor::Tensor w_;
  tensor::Tensor b_;
};

/// Linear layer whose weight is elementwise-gated by a constant binary mask
/// (the MADE connectivity constraint): y = x (W o M) + b.
///
/// Inference-side masked-weight cache: when gradient tracking is off
/// (NoGradGuard / NoGradScope — every estimator inference path), Forward
/// reuses a cached materialization of W o M instead of recomputing the
/// elementwise product on every call. At batch 1 that product dominates the
/// forward pass (~95% of estimation latency, see docs/architecture.md), so
/// the cache is what makes single-query serving latency flat.
///
/// Cache coherence: the cached product is stamped with
/// tensor::ParameterVersion() and rebuilt whenever the global counter has
/// moved — i.e. after any optimizer Step() or Module::Load(). Code mutating
/// W through a raw data() pointer must call tensor::BumpParameterVersion().
/// The cached tensor is allocated outside the inference arena, so it may
/// outlive any NoGradScope and be shared across threads.
///
/// Thread-safety: Forward is safe to call concurrently from many threads
/// while parameters are frozen (the cache is rebuilt under an internal
/// mutex, and a rebuilt handle is published atomically). Concurrent
/// parameter *updates* are not synchronized with in-flight forwards — the
/// serving contract is to quiesce estimation around training steps.
class MaskedLinear : public Module {
 public:
  /// `mask` must be an [in, out] tensor of 0/1 floats.
  MaskedLinear(int64_t in, int64_t out, tensor::Tensor mask, Rng& rng);

  /// Fused act(x (W o M) + b); kNone gives the plain affine layer. With
  /// gradients enabled the product W o M is part of the graph (so W trains);
  /// with gradients disabled it is served from the masked-weight cache.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         tensor::Activation act = tensor::Activation::kNone) const;

  const tensor::Tensor& mask() const { return mask_; }
  const tensor::Tensor& weight() const { return w_; }

 private:
  /// Masked-weight cache slot (inference only). `version` is the
  /// ParameterVersion() stamp under which `masked_w` was built; 0 means
  /// never built. Heap-allocated so the layer stays movable (std::mutex is
  /// not) — MADE stores its layers in vectors.
  struct MaskedWeightCache {
    std::mutex mu;
    tensor::Tensor masked_w;
    uint64_t version = 0;
  };

  /// Returns the cached W o M, rebuilding it if the parameter version moved.
  tensor::Tensor CachedMaskedWeight() const;

  int64_t in_;
  int64_t out_;
  tensor::Tensor w_;
  tensor::Tensor b_;
  tensor::Tensor mask_;  // constant
  std::unique_ptr<MaskedWeightCache> cache_;
};

/// Plain ReLU MLP; `sizes` = {in, h1, ..., out}. No activation after the
/// final layer.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& sizes, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  std::vector<Linear> layers_;
};

/// Embedding table: rows of a [num_embeddings, dim] matrix.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng);

  tensor::Tensor Forward(const std::vector<int32_t>& idx) const;

  int64_t dim() const { return dim_; }
  const tensor::Tensor& weight() const { return w_; }

 private:
  int64_t dim_;
  tensor::Tensor w_;
};

/// Single LSTM cell; state is carried explicitly by the caller.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input, int64_t hidden, Rng& rng);

  struct State {
    tensor::Tensor h;
    tensor::Tensor c;
  };

  /// Zero state for a batch.
  State InitialState(int64_t batch) const;

  /// One step: returns the new state.
  State Forward(const tensor::Tensor& x, const State& prev) const;

  int64_t hidden() const { return hidden_; }

 private:
  int64_t hidden_;
  tensor::Tensor wx_;  // [input, 4H]
  tensor::Tensor wh_;  // [hidden, 4H]
  tensor::Tensor b_;   // [4H]
};

}  // namespace duet::nn

#endif  // DUET_NN_LAYERS_H_
