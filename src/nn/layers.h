// Core layers: Linear, MaskedLinear (MADE building block), MLP, Embedding,
// LSTMCell (used by the RNN variant of Duet's MPSN).
#ifndef DUET_NN_LAYERS_H_
#define DUET_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// Fully connected layer y = x W + b with PyTorch-style U(-1/sqrt(I), ..)
/// initialization. W is stored [in, out] to match tensor::MatMul.
class Linear : public Module {
 public:
  Linear(int64_t in, int64_t out, Rng& rng);

  /// Fused act(x W + b); kNone gives the plain affine layer.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         tensor::Activation act = tensor::Activation::kNone) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  const tensor::Tensor& weight() const { return w_; }
  const tensor::Tensor& bias() const { return b_; }

 private:
  int64_t in_;
  int64_t out_;
  tensor::Tensor w_;
  tensor::Tensor b_;
};

/// Linear layer whose weight is elementwise-gated by a constant binary mask
/// (the MADE connectivity constraint): y = x (W o M) + b.
class MaskedLinear : public Module {
 public:
  /// `mask` must be an [in, out] tensor of 0/1 floats.
  MaskedLinear(int64_t in, int64_t out, tensor::Tensor mask, Rng& rng);

  /// Fused act(x (W o M) + b); kNone gives the plain affine layer.
  tensor::Tensor Forward(const tensor::Tensor& x,
                         tensor::Activation act = tensor::Activation::kNone) const;

  const tensor::Tensor& mask() const { return mask_; }
  const tensor::Tensor& weight() const { return w_; }

 private:
  int64_t in_;
  int64_t out_;
  tensor::Tensor w_;
  tensor::Tensor b_;
  tensor::Tensor mask_;  // constant
};

/// Plain ReLU MLP; `sizes` = {in, h1, ..., out}. No activation after the
/// final layer.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& sizes, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  std::vector<Linear> layers_;
};

/// Embedding table: rows of a [num_embeddings, dim] matrix.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng);

  tensor::Tensor Forward(const std::vector<int32_t>& idx) const;

  int64_t dim() const { return dim_; }
  const tensor::Tensor& weight() const { return w_; }

 private:
  int64_t dim_;
  tensor::Tensor w_;
};

/// Single LSTM cell; state is carried explicitly by the caller.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input, int64_t hidden, Rng& rng);

  struct State {
    tensor::Tensor h;
    tensor::Tensor c;
  };

  /// Zero state for a batch.
  State InitialState(int64_t batch) const;

  /// One step: returns the new state.
  State Forward(const tensor::Tensor& x, const State& prev) const;

  int64_t hidden() const { return hidden_; }

 private:
  int64_t hidden_;
  tensor::Tensor wx_;  // [input, 4H]
  tensor::Tensor wh_;  // [hidden, 4H]
  tensor::Tensor b_;   // [4H]
};

}  // namespace duet::nn

#endif  // DUET_NN_LAYERS_H_
