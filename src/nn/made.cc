#include "nn/made.h"

#include <algorithm>

#include "common/logging.h"

namespace duet::nn {

using tensor::BlockSpec;
using tensor::Tensor;

std::vector<int32_t> MadeInputDegrees(const std::vector<int64_t>& widths) {
  std::vector<int32_t> degrees;
  for (size_t col = 0; col < widths.size(); ++col) {
    for (int64_t j = 0; j < widths[col]; ++j) degrees.push_back(static_cast<int32_t>(col) + 1);
  }
  return degrees;
}

std::vector<int32_t> MadeHiddenDegrees(int64_t size, int num_columns) {
  // Hidden degrees cycle over [1, N-1]; for N == 1 there is nothing useful a
  // hidden unit could see, so everything gets degree 1 (the output layer's
  // strict rule then disconnects it, leaving a bias-only head).
  const int32_t span = std::max(num_columns - 1, 1);
  std::vector<int32_t> degrees(static_cast<size_t>(size));
  for (int64_t k = 0; k < size; ++k) degrees[static_cast<size_t>(k)] = static_cast<int32_t>(k % span) + 1;
  return degrees;
}

std::vector<int32_t> MadeOutputDegrees(const std::vector<int64_t>& widths) {
  return MadeInputDegrees(widths);  // output block i carries degree i+1
}

Tensor BuildMadeMask(const std::vector<int32_t>& in_deg, const std::vector<int32_t>& out_deg,
                     bool strict) {
  const int64_t in_dim = static_cast<int64_t>(in_deg.size());
  const int64_t out_dim = static_cast<int64_t>(out_deg.size());
  Tensor mask = Tensor::Zeros({in_dim, out_dim});
  float* m = mask.data();
  for (int64_t j = 0; j < in_dim; ++j) {
    for (int64_t k = 0; k < out_dim; ++k) {
      const bool allowed = strict ? out_deg[static_cast<size_t>(k)] > in_deg[static_cast<size_t>(j)]
                                  : out_deg[static_cast<size_t>(k)] >= in_deg[static_cast<size_t>(j)];
      m[j * out_dim + k] = allowed ? 1.0f : 0.0f;
    }
  }
  return mask;
}

Made::Made(MadeOptions options, Rng& rng)
    : options_(std::move(options)), plan_cache_(std::make_unique<InferencePlanCache>()) {
  const auto& opt = options_;
  DUET_CHECK(!opt.input_widths.empty());
  DUET_CHECK_EQ(opt.input_widths.size(), opt.output_widths.size());
  DUET_CHECK(!opt.hidden_sizes.empty());
  const int n = static_cast<int>(opt.input_widths.size());

  for (int64_t w : opt.input_widths) {
    in_blocks_.push_back({input_dim_, w});
    input_dim_ += w;
  }
  for (int64_t w : opt.output_widths) {
    out_blocks_.push_back({output_dim_, w});
    output_dim_ += w;
  }

  const std::vector<int32_t> in_deg = MadeInputDegrees(opt.input_widths);
  const std::vector<int32_t> out_deg = MadeOutputDegrees(opt.output_widths);

  if (!opt.residual) {
    std::vector<int32_t> prev = in_deg;
    int64_t prev_dim = input_dim_;
    for (int64_t h : opt.hidden_sizes) {
      std::vector<int32_t> cur = MadeHiddenDegrees(h, n);
      // Hidden layers use the >= rule. Inputs carry degrees 1..N while
      // hidden units span 1..N-1, so the last column's input block feeds
      // nothing — correct, since no output may depend on column N-1.
      layers_.emplace_back(prev_dim, h, BuildMadeMask(prev, cur, /*strict=*/false), rng);
      prev = std::move(cur);
      prev_dim = h;
    }
    layers_.emplace_back(prev_dim, output_dim_, BuildMadeMask(prev, out_deg, /*strict=*/true),
                         rng);
    for (auto& l : layers_) RegisterChild(l);
  } else {
    for (size_t i = 1; i < opt.hidden_sizes.size(); ++i) {
      DUET_CHECK_EQ(opt.hidden_sizes[i], opt.hidden_sizes[0])
          << "ResMADE requires uniform hidden sizes";
    }
    const int64_t h = opt.hidden_sizes[0];
    const std::vector<int32_t> hid = MadeHiddenDegrees(h, n);
    res_input_ = std::make_unique<MaskedLinear>(input_dim_, h,
                                                BuildMadeMask(in_deg, hid, /*strict=*/false), rng);
    const Tensor hh_mask = BuildMadeMask(hid, hid, /*strict=*/false);
    for (size_t blk = 0; blk < opt.hidden_sizes.size(); ++blk) {
      res_layers_.emplace_back(h, h, hh_mask, rng);
      res_layers_.emplace_back(h, h, hh_mask, rng);
    }
    res_output_ = std::make_unique<MaskedLinear>(h, output_dim_,
                                                 BuildMadeMask(hid, out_deg, /*strict=*/true), rng);
    RegisterChild(*res_input_);
    for (auto& l : res_layers_) RegisterChild(l);
    RegisterChild(*res_output_);
  }
}

void Made::SetInferenceBackend(tensor::WeightBackend backend) const {
  for (const MaskedLinear& l : layers_) l.SetInferenceBackend(backend);
  if (res_input_) res_input_->SetInferenceBackend(backend);
  for (const MaskedLinear& l : res_layers_) l.SetInferenceBackend(backend);
  if (res_output_) res_output_->SetInferenceBackend(backend);
  plan_cache_->requested.store(backend, std::memory_order_release);
}

void Made::FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const {
  for (const MaskedLinear& l : layers_) l.FreezeInferenceCaches(stamp);
  if (res_input_) res_input_->FreezeInferenceCaches(stamp);
  for (const MaskedLinear& l : res_layers_) l.FreezeInferenceCaches(stamp);
  if (res_output_) res_output_->FreezeInferenceCaches(stamp);
  PinPlanCache(*plan_cache_, stamp);
}

void Made::SetPlanEnabled(bool enabled) const {
  plan_cache_->enabled.store(enabled, std::memory_order_release);
  if (!enabled) {
    // Reclaim the compiled program: a disabled plan would otherwise sit
    // allocated forever and keep counting toward PlanBytes()/CachedBytes().
    // In-flight forwards holding the shared_ptr stay valid.
    std::lock_guard<std::mutex> lock(plan_cache_->mu);
    plan_cache_->plan.reset();
    plan_cache_->version = 0;
  } else {
    // Symmetric reclaim: the plan path never reads the per-layer packs, so
    // packs built while plans were off would sit allocated unused (and
    // double-count in CachedBytes on top of the plan's packs).
    for (const MaskedLinear& l : layers_) l.DropPackedCache();
    if (res_input_) res_input_->DropPackedCache();
    for (const MaskedLinear& l : res_layers_) l.DropPackedCache();
    if (res_output_) res_output_->DropPackedCache();
  }
}

uint64_t Made::PlanBytes() const {
  std::lock_guard<std::mutex> lock(plan_cache_->mu);
  return plan_cache_->plan ? plan_cache_->plan->bytes() : 0;
}

PlanTelemetry Made::PlanInfo() const { return plan_cache_->Snapshot(); }

uint64_t Made::CachedBytes() const {
  uint64_t bytes = PlanBytes();
  for (const MaskedLinear& l : layers_) bytes += l.CachedBytes();
  if (res_input_) bytes += res_input_->CachedBytes();
  for (const MaskedLinear& l : res_layers_) bytes += l.CachedBytes();
  if (res_output_) bytes += res_output_->CachedBytes();
  return bytes;
}

std::shared_ptr<const InferencePlan> Made::Compile(tensor::WeightBackend backend) const {
  // Every masked layer gets the degree-sorted output permutation: the
  // derived column sort turns each mask row into a single contiguous run in
  // packed space (CSR degenerates to one (start,len) per row; dense/int8/
  // f16 skip the structural-zero tail), and the fused gathering epilogue
  // keeps activations in the original layout — so the program below mirrors
  // Forward() op for op and dense/CSR plans stay bitwise-equal to it.
  PlanBuilder b(backend, input_dim_);
  if (!options_.residual) {
    int h = PlanBuilder::kInput;
    for (size_t i = 0; i < layers_.size(); ++i) {
      const bool last = i + 1 == layers_.size();
      h = b.Linear(h, layers_[i].EffectiveWeightCopy(), layers_[i].bias(),
                   last ? tensor::Activation::kNone : tensor::Activation::kRelu,
                   /*permute_outputs=*/true, /*weight_is_parameter=*/false);
    }
    return b.Finish(h);
  }
  int h = b.Linear(PlanBuilder::kInput, res_input_->EffectiveWeightCopy(),
                   res_input_->bias(), tensor::Activation::kNone,
                   /*permute_outputs=*/true, /*weight_is_parameter=*/false);
  for (size_t blk = 0; blk + 1 < res_layers_.size(); blk += 2) {
    int t = b.Relu(h);
    t = b.Linear(t, res_layers_[blk].EffectiveWeightCopy(), res_layers_[blk].bias(),
                 tensor::Activation::kRelu, /*permute_outputs=*/true,
                 /*weight_is_parameter=*/false);
    t = b.Linear(t, res_layers_[blk + 1].EffectiveWeightCopy(), res_layers_[blk + 1].bias(),
                 tensor::Activation::kNone, /*permute_outputs=*/true,
                 /*weight_is_parameter=*/false);
    h = b.Add(h, t);
  }
  const int pre = b.Relu(h);
  return b.Finish(b.Linear(pre, res_output_->EffectiveWeightCopy(), res_output_->bias(),
                           tensor::Activation::kNone, /*permute_outputs=*/true,
                           /*weight_is_parameter=*/false));
}

Tensor Made::Forward(const Tensor& x) const {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(x.dim(1), input_dim_);
  if (!tensor::NoGradGuard::GradEnabled() &&
      plan_cache_->enabled.load(std::memory_order_acquire)) {
    const auto plan = GetOrCompilePlan(
        *plan_cache_, [this](tensor::WeightBackend backend) { return Compile(backend); });
    return plan->Execute(x);
  }
  if (!options_.residual) {
    Tensor h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
      const bool last = i + 1 == layers_.size();
      h = layers_[i].Forward(h, last ? tensor::Activation::kNone : tensor::Activation::kRelu);
    }
    return h;
  }
  // Pre-activation residual blocks: h itself feeds the skip connection, so
  // only the inner ReLU (whose input is consumed exactly once) is fused.
  Tensor h = res_input_->Forward(x);
  for (size_t blk = 0; blk + 1 < res_layers_.size(); blk += 2) {
    Tensor y = res_layers_[blk].Forward(tensor::Relu(h), tensor::Activation::kRelu);
    y = res_layers_[blk + 1].Forward(y);
    h = tensor::Add(h, y);
  }
  return res_output_->Forward(tensor::Relu(h));
}

}  // namespace duet::nn
