#include "nn/layers.h"

#include <cmath>

#include "common/logging.h"

namespace duet::nn {

using tensor::Tensor;

namespace {

Tensor UniformInit(std::vector<int64_t> shape, float bound, Rng& rng) {
  Tensor t = Tensor::Zeros(std::move(shape));
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = (rng.UniformFloat() * 2.0f - 1.0f) * bound;
  return t;
}

}  // namespace

Linear::Linear(int64_t in, int64_t out, Rng& rng)
    : in_(in), out_(out), cache_(std::make_unique<PackedWeightsCache>()) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in));
  w_ = RegisterParam(UniformInit({in, out}, bound, rng));
  b_ = RegisterParam(UniformInit({out}, bound, rng));
}

tensor::Tensor Linear::EffectiveWeightCopy() const {
  return Tensor::FromVector(w_.shape(), w_.value_vector());
}

namespace {

/// The reference version a cache slot must match: the frozen snapshot
/// version for pinned slots (immune to foreign training), the global
/// counter otherwise. Caller holds cache.mu.
uint64_t CacheReferenceVersion(const PackedWeightsCache& cache) {
  return cache.snapshot_id != 0 ? cache.snapshot_version : tensor::ParameterVersion();
}

/// Shared FreezeInferenceCaches implementation for Linear / MaskedLinear.
void PinPackedCache(PackedWeightsCache& cache, const tensor::SnapshotStamp& stamp) {
  DUET_CHECK_NE(stamp.id, 0u) << "snapshot id 0 means 'not a snapshot'";
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.snapshot_id = stamp.id;
  cache.snapshot_version = stamp.parameter_version;
  // A pack built under the freeze-time version packed the frozen weights
  // and keeps hitting (pinned lookups compare against snapshot_version).
  // Anything older predates the last mutation and must be dropped, not
  // restamped: the pin removes the global-counter comparison that would
  // otherwise have caught the staleness.
  if (cache.packed && cache.version != stamp.parameter_version) {
    cache.packed.reset();
    cache.version = 0;
  }
}

}  // namespace

std::shared_ptr<const tensor::PackedWeights> Linear::PackedWeight() const {
  const tensor::WeightBackend backend = cache_->requested.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(cache_->mu);
  const uint64_t version = CacheReferenceVersion(*cache_);
  if (cache_->version != version || !cache_->packed || cache_->packed->backend != backend) {
    // Pack from a non-pooled copy of W: the pack outlives any NoGradScope
    // and is read from many threads, so it must not borrow from a
    // thread-local inference arena or alias the mutable parameter storage.
    cache_->packed = tensor::PackWeights(
        Tensor::FromVector(w_.shape(), w_.value_vector()), backend);
    cache_->version = version;
  }
  return cache_->packed;
}

void Linear::SetInferenceBackend(tensor::WeightBackend backend) const {
  cache_->requested.store(backend, std::memory_order_release);
  if (backend == tensor::WeightBackend::kDenseF32) {
    // The dense path multiplies by W directly and never reads the cache, so
    // a pack left over from a csr/int8 configuration would sit allocated
    // forever and keep counting toward CachedBytes(); drop it now.
    std::lock_guard<std::mutex> lock(cache_->mu);
    cache_->packed.reset();
    cache_->version = 0;
  }
}

void Linear::FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const {
  PinPackedCache(*cache_, stamp);
}

uint64_t Linear::CachedBytes() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->packed ? cache_->packed->bytes() : 0;
}

void Linear::DropPackedCache() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->packed.reset();
  cache_->version = 0;
}

Tensor Linear::Forward(const Tensor& x, tensor::Activation act) const {
  if (!tensor::NoGradGuard::GradEnabled() &&
      cache_->requested.load(std::memory_order_acquire) != tensor::WeightBackend::kDenseF32) {
    return tensor::PackedMatMulBiasAct(x, *PackedWeight(), b_, act);
  }
  // Dense inference multiplies by W directly — the unpacked weight IS the
  // dense packed form, so no cache copy is ever built on this path.
  return tensor::MatMulBiasAct(x, w_, b_, act);
}

MaskedLinear::MaskedLinear(int64_t in, int64_t out, Tensor mask, Rng& rng)
    : in_(in), out_(out), mask_(std::move(mask)),
      cache_(std::make_unique<PackedWeightsCache>()) {
  DUET_CHECK_EQ(mask_.ndim(), 2);
  DUET_CHECK_EQ(mask_.dim(0), in);
  DUET_CHECK_EQ(mask_.dim(1), out);
  const float bound = 1.0f / std::sqrt(static_cast<float>(in));
  w_ = RegisterParam(UniformInit({in, out}, bound, rng));
  b_ = RegisterParam(UniformInit({out}, bound, rng));
}

tensor::Tensor MaskedLinear::EffectiveWeightCopy() const {
  // Materialize W o M into a fresh non-pooled buffer: packs built from it
  // outlive any NoGradScope and are read from many threads, so the product
  // must not borrow from a thread-local inference arena (see arena rules in
  // tensor.h).
  const float* w = w_.data();
  const float* m = mask_.data();
  std::vector<float> wm(static_cast<size_t>(w_.numel()));
  for (size_t i = 0; i < wm.size(); ++i) wm[i] = w[i] * m[i];
  return Tensor::FromVector(w_.shape(), std::move(wm));
}

std::shared_ptr<const tensor::PackedWeights> MaskedLinear::PackedEffectiveWeight() const {
  const tensor::WeightBackend backend = cache_->requested.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(cache_->mu);
  const uint64_t version = CacheReferenceVersion(*cache_);
  if (cache_->version != version || !cache_->packed || cache_->packed->backend != backend) {
    // For kDenseF32 the pack adopts the W o M materialization as-is —
    // exactly the PR-2 masked-weight cache; for CSR/int8/f16 the buffer is
    // a pack-time temporary.
    cache_->packed = tensor::PackWeights(EffectiveWeightCopy(), backend);
    cache_->version = version;
  }
  return cache_->packed;
}

void MaskedLinear::SetInferenceBackend(tensor::WeightBackend backend) const {
  cache_->requested.store(backend, std::memory_order_release);
}

void MaskedLinear::FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const {
  PinPackedCache(*cache_, stamp);
}

uint64_t MaskedLinear::CachedBytes() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->packed ? cache_->packed->bytes() : 0;
}

void MaskedLinear::DropPackedCache() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->packed.reset();
  cache_->version = 0;
}

Tensor MaskedLinear::Forward(const Tensor& x, tensor::Activation act) const {
  if (!tensor::NoGradGuard::GradEnabled()) {
    // Inference: the mask is constant and W is frozen between optimizer
    // steps, so W o M is packed once per parameter version. The dense
    // backend performs the same float multiplies as the tracked path below
    // and dispatches through the same GEMM, so cached and uncached forwards
    // agree bitwise; CSR skips only exact zeros and agrees bitwise too.
    return tensor::PackedMatMulBiasAct(x, *PackedEffectiveWeight(), b_, act);
  }
  return tensor::MatMulBiasAct(x, tensor::Mul(w_, mask_), b_, act);
}

Mlp::Mlp(const std::vector<int64_t>& sizes, Rng& rng)
    : plan_cache_(std::make_unique<InferencePlanCache>()) {
  DUET_CHECK_GE(sizes.size(), 2u);
  layers_.reserve(sizes.size() - 1);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(sizes[i], sizes[i + 1], rng);
  }
  for (auto& l : layers_) RegisterChild(l);
}

Tensor Mlp::Forward(const Tensor& x) const {
  if (!tensor::NoGradGuard::GradEnabled() &&
      plan_cache_->enabled.load(std::memory_order_acquire)) {
    const auto plan = GetOrCompilePlan(
        *plan_cache_, [this](tensor::WeightBackend backend) { return Compile(backend); });
    return plan->Execute(x);
  }
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    h = layers_[i].Forward(h, last ? tensor::Activation::kNone : tensor::Activation::kRelu);
  }
  return h;
}

std::shared_ptr<const InferencePlan> Mlp::Compile(tensor::WeightBackend backend) const {
  PlanBuilder b(backend, layers_.front().in_features());
  int h = PlanBuilder::kInput;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    // Plain Linear weights have no structural zeros, so the degree-sorted
    // permutation is never profitable; dense packs share the live parameter
    // handle (no weight copy), other backends pack from a fresh copy.
    const bool dense = backend == tensor::WeightBackend::kDenseF32;
    h = b.Linear(h, dense ? layers_[i].weight() : layers_[i].EffectiveWeightCopy(),
                 layers_[i].bias(),
                 last ? tensor::Activation::kNone : tensor::Activation::kRelu,
                 /*permute_outputs=*/false, /*weight_is_parameter=*/dense);
  }
  return b.Finish(h);
}

void Mlp::SetInferenceBackend(tensor::WeightBackend backend) const {
  for (const Linear& l : layers_) l.SetInferenceBackend(backend);
  plan_cache_->requested.store(backend, std::memory_order_release);
}

void Mlp::FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const {
  for (const Linear& l : layers_) l.FreezeInferenceCaches(stamp);
  PinPlanCache(*plan_cache_, stamp);
}

void Mlp::SetPlanEnabled(bool enabled) const {
  plan_cache_->enabled.store(enabled, std::memory_order_release);
  if (!enabled) {
    // Reclaim the compiled program: a disabled plan would otherwise sit
    // allocated forever and keep counting toward PlanBytes()/CachedBytes().
    // In-flight forwards holding the shared_ptr stay valid.
    std::lock_guard<std::mutex> lock(plan_cache_->mu);
    plan_cache_->plan.reset();
    plan_cache_->version = 0;
  } else {
    // Symmetric reclaim: the plan path never reads the per-layer packs, so
    // packs built while plans were off would sit allocated unused (and
    // double-count in CachedBytes on top of the plan's packs).
    for (const Linear& l : layers_) l.DropPackedCache();
  }
}

uint64_t Mlp::PlanBytes() const {
  std::lock_guard<std::mutex> lock(plan_cache_->mu);
  return plan_cache_->plan ? plan_cache_->plan->bytes() : 0;
}

PlanTelemetry Mlp::PlanInfo() const { return plan_cache_->Snapshot(); }

uint64_t Mlp::CachedBytes() const {
  uint64_t bytes = PlanBytes();
  for (const Linear& l : layers_) bytes += l.CachedBytes();
  return bytes;
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng& rng) : dim_(dim) {
  // Normal(0, 1) scaled down keeps embedding magnitudes comparable to the
  // binary encodings they can replace.
  Tensor t = Tensor::Zeros({num_embeddings, dim});
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(rng.Gaussian()) * 0.1f;
  w_ = RegisterParam(t);
}

Tensor Embedding::Forward(const std::vector<int32_t>& idx) const {
  return tensor::EmbeddingLookup(w_, idx);
}

LstmCell::LstmCell(int64_t input, int64_t hidden, Rng& rng) : hidden_(hidden) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden));
  wx_ = RegisterParam(UniformInit({input, 4 * hidden}, bound, rng));
  wh_ = RegisterParam(UniformInit({hidden, 4 * hidden}, bound, rng));
  b_ = RegisterParam(UniformInit({4 * hidden}, bound, rng));
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  return {Tensor::Zeros({batch, hidden_}), Tensor::Zeros({batch, hidden_})};
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& prev) const {
  using namespace tensor;  // NOLINT
  Tensor gates = AddBias(Add(MatMul(x, wx_), MatMul(prev.h, wh_)), b_);
  Tensor i = Sigmoid(SliceCols(gates, 0, hidden_));
  Tensor f = Sigmoid(SliceCols(gates, hidden_, hidden_));
  Tensor g = Tanh(SliceCols(gates, 2 * hidden_, hidden_));
  Tensor o = Sigmoid(SliceCols(gates, 3 * hidden_, hidden_));
  Tensor c = Add(Mul(f, prev.c), Mul(i, g));
  Tensor h = Mul(o, Tanh(c));
  return {h, c};
}

}  // namespace duet::nn
