// Backbone: the autoregressive network interface shared by MADE and the
// Transformer.
//
// Duet's estimator (core/duet_model.h) only needs four things from its
// network: a [B, input_dim] -> [B, output_dim] forward pass, the per-column
// block layout on both sides, and the autoregressive guarantee that output
// block i depends solely on input blocks < i. MADE provides this via
// connectivity masks; nn::BlockTransformer provides it via causal
// self-attention over column tokens (the paper's Sec. V-A4 anticipated
// variant). Both implement this interface so the estimator, trainer and
// benches are backbone-agnostic.
#ifndef DUET_NN_BACKBONE_H_
#define DUET_NN_BACKBONE_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// Column-blocked autoregressive network: output block i is a function of
/// input blocks strictly before i.
class Backbone : public Module {
 public:
  ~Backbone() override = default;

  /// x: [B, input_dim()] -> logits [B, output_dim()].
  virtual tensor::Tensor Forward(const tensor::Tensor& x) const = 0;

  /// Output logit block layout, one block per column.
  virtual const std::vector<tensor::BlockSpec>& output_blocks() const = 0;

  /// Input block layout, one block per column.
  virtual const std::vector<tensor::BlockSpec>& input_blocks() const = 0;

  virtual int64_t input_dim() const = 0;
  virtual int64_t output_dim() const = 0;
  virtual int num_columns() const = 0;
};

}  // namespace duet::nn

#endif  // DUET_NN_BACKBONE_H_
