// Module base class: parameter registration, counting, checkpoint I/O.
#ifndef DUET_NN_MODULE_H_
#define DUET_NN_MODULE_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// Base class for neural network building blocks. Parameters registered via
/// RegisterParam (or pulled in from child modules via RegisterChild) are
/// exposed to optimizers and serialized in registration order.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters (this module + registered children).
  const std::vector<tensor::Tensor>& parameters() const { return params_; }

  /// Total number of scalar parameters.
  int64_t NumParams() const;

  /// Model size in MiB assuming float32 storage (paper Table II "Size(MB)").
  double SizeMB() const;

  /// Writes all parameters (values only) in registration order.
  void Save(BinaryWriter& w) const;

  /// Reads parameters written by Save into the existing tensors; shapes must
  /// match the current architecture.
  void Load(BinaryReader& r);

 protected:
  /// Registers a tensor as trainable and returns it.
  tensor::Tensor RegisterParam(tensor::Tensor t);

  /// Adopts all parameters of a child module (child must outlive the parent's
  /// optimizer usage; typically children are data members).
  void RegisterChild(Module& child);

 private:
  std::vector<tensor::Tensor> params_;
};

}  // namespace duet::nn

#endif  // DUET_NN_MODULE_H_
