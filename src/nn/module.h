// Module base class: parameter registration, counting, checkpoint I/O.
#ifndef DUET_NN_MODULE_H_
#define DUET_NN_MODULE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.h"
#include "tensor/tensor.h"

namespace duet::tensor {
// Opaque declaration (definition: tensor/packed_weights.h); layers with a
// packed cache include the full header, plain modules do not need it.
enum class WeightBackend : int32_t;
}  // namespace duet::tensor

namespace duet::nn {

// Opaque declaration (definition: nn/inference_plan.h); only modules that
// compile plans pull in the full header.
class InferencePlan;

/// Compiled-plan cache telemetry (serving observability; summed over
/// children by container modules). `compile_micros` is wall time spent
/// inside plan compilation; `cache_hits` counts no-grad forwards served by
/// an already-compiled plan.
struct PlanTelemetry {
  uint64_t compiles = 0;
  uint64_t compile_micros = 0;
  uint64_t cache_hits = 0;

  PlanTelemetry& operator+=(const PlanTelemetry& o) {
    compiles += o.compiles;
    compile_micros += o.compile_micros;
    cache_hits += o.cache_hits;
    return *this;
  }
};

/// Base class for neural network building blocks. Parameters registered via
/// RegisterParam (or pulled in from child modules via RegisterChild) are
/// exposed to optimizers and serialized in registration order.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  // Explicit noexcept moves: the virtual destructor would otherwise
  // suppress them, and containers of move-only layers (packed caches hold a
  // mutex behind a unique_ptr) need nothrow moves so vector reallocation
  // never falls back to the deleted copy path.
  Module(Module&&) noexcept = default;
  Module& operator=(Module&&) noexcept = default;
  Module(const Module&) = default;
  Module& operator=(const Module&) = default;

  /// Selects the inference-side packed-weight backend (see
  /// tensor/packed_weights.h). Layers with a packed cache repack lazily on
  /// their next no-grad forward; container modules forward the call to their
  /// children; leaves without packed weights ignore it (default). Const
  /// because it only reconfigures inference caches, never the trainable
  /// parameters. Packs and plans publish atomically, so a switch racing
  /// in-flight forwards is memory-safe — but a racing forward may serve
  /// either backend, so configure a model before sharing it (snapshots are
  /// configured once at publish time, see serve/model_registry.h).
  virtual void SetInferenceBackend(tensor::WeightBackend backend) const {
    (void)backend;
  }

  /// Declares this module's parameters permanently frozen and pins its
  /// inference caches (packs + compiled plans) to `stamp`: pinned caches
  /// stop comparing against the moving global tensor::ParameterVersion()
  /// and serve what they built under stamp.parameter_version forever. This
  /// is the multi-version serving hook — it makes a published snapshot
  /// immune to the version bumps a background fine-tune of a *different*
  /// (cloned) model performs on every optimizer step. Irreversible by
  /// design: after freezing, training this module is a contract violation
  /// (caches would serve stale weights). Container modules forward to their
  /// children; modules without caches ignore it (default).
  virtual void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const {
    (void)stamp;
  }

  /// Bytes currently held by inference-side packed-weight caches (0 when no
  /// cache has been built). Container modules sum over their children. This
  /// is the observability hook for the cache's memory cost: a dense packed
  /// cache doubles a masked layer's weight memory, CSR roughly halves the
  /// extra copy, int8 quarters it, f16 halves it. Modules that compile
  /// inference plans include their plan's packed weights here (the plan IS
  /// the packed-weight cache on the compiled path).
  virtual uint64_t CachedBytes() const { return 0; }

  /// Compiles this module's no-grad forward into a flat packed-op program
  /// (see nn/inference_plan.h), or returns null for modules without a
  /// compilable forward (the default). Called by the plan cache, not
  /// per-forward; implementations walk their layers and pack weights for
  /// `backend`.
  virtual std::shared_ptr<const InferencePlan> Compile(tensor::WeightBackend backend) const {
    (void)backend;
    return nullptr;
  }

  /// Enables/disables compiled-plan execution for no-grad forwards (default
  /// on for modules that support it; containers forward to children).
  /// Disabling also frees the cached program, so PlanBytes() drops to 0.
  /// Like SetInferenceBackend, the toggle publishes atomically but is not
  /// deterministic under racing forwards — configure before sharing.
  virtual void SetPlanEnabled(bool enabled) const { (void)enabled; }

  /// Bytes held by the compiled plan's packed weights (0 when no plan is
  /// compiled or the module does not compile plans). Already included in
  /// CachedBytes(); exposed separately so callers can report the plan
  /// footprint on its own.
  virtual uint64_t PlanBytes() const { return 0; }

  /// Plan-cache telemetry (zeros for modules without plans; containers sum
  /// over children).
  virtual PlanTelemetry PlanInfo() const { return {}; }

  /// All trainable parameters (this module + registered children).
  const std::vector<tensor::Tensor>& parameters() const { return params_; }

  /// Total number of scalar parameters.
  int64_t NumParams() const;

  /// Model size in MiB assuming float32 storage (paper Table II "Size(MB)").
  double SizeMB() const;

  /// Writes all parameters (values only) in registration order.
  void Save(BinaryWriter& w) const;

  /// Reads parameters written by Save into the existing tensors; shapes must
  /// match the current architecture.
  void Load(BinaryReader& r);

  /// Copies every parameter value from `src` into this module's existing
  /// tensors (registration order; counts and shapes must match — both
  /// modules must share an architecture). Bitwise what Save(src)+Load(this)
  /// produces, without the serialization buffer: no transient image of the
  /// parameters is materialized, which is what keeps core::CloneModel at
  /// one extra model of memory instead of two. Mutates through raw data()
  /// pointers under a ParameterMutationGuard, so like Load it invalidates
  /// this module's parameter-derived caches; `src` is only read.
  void CopyParametersFrom(const Module& src);

 protected:
  /// Registers a tensor as trainable and returns it.
  tensor::Tensor RegisterParam(tensor::Tensor t);

  /// Adopts all parameters of a child module (child must outlive the parent's
  /// optimizer usage; typically children are data members).
  void RegisterChild(Module& child);

 private:
  std::vector<tensor::Tensor> params_;
};

}  // namespace duet::nn

#endif  // DUET_NN_MODULE_H_
