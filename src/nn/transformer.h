// BlockTransformer: a decoder-only Transformer over column tokens.
//
// The paper evaluates Duet on MADE/ResMADE but explicitly anticipates a
// Transformer backbone (Sec. V-A4). This implementation treats each table
// column as one token: position 0 is a learned BOS vector, position i >= 1
// embeds input block i-1 through a per-column linear projection, and output
// head i reads the hidden state at position i. Causal self-attention
// (token i attends positions <= i) therefore gives output block i access to
// exactly input blocks < i — the same autoregressive contract MADE enforces
// with connectivity masks, checked by the shared Backbone property tests.
//
// Blocks are pre-LN ("GPT-2 style"): x += MHA(LN(x)); x += FFN(LN(x)), with
// a final LayerNorm before the per-column output heads.
#ifndef DUET_NN_TRANSFORMER_H_
#define DUET_NN_TRANSFORMER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/backbone.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// Architecture knobs for BlockTransformer (widths come from the encoder).
struct TransformerConfig {
  int64_t d_model = 64;
  int num_heads = 4;
  int num_layers = 2;
  /// Feed-forward hidden width; 0 selects the conventional 4 * d_model.
  int64_t ffn_hidden = 0;
};

/// Full options: per-column block widths plus the architecture config.
struct TransformerOptions {
  std::vector<int64_t> input_widths;
  std::vector<int64_t> output_widths;
  TransformerConfig config;
};

/// Decoder-only Transformer implementing the column-blocked Backbone
/// contract.
class BlockTransformer : public Backbone {
 public:
  BlockTransformer(TransformerOptions options, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const override;

  const std::vector<tensor::BlockSpec>& output_blocks() const override {
    return out_blocks_;
  }
  const std::vector<tensor::BlockSpec>& input_blocks() const override {
    return in_blocks_;
  }
  int64_t input_dim() const override { return input_dim_; }
  int64_t output_dim() const override { return output_dim_; }
  int num_columns() const override {
    return static_cast<int>(options_.input_widths.size());
  }

  const TransformerOptions& options() const { return options_; }

 private:
  /// One pre-LN decoder block's parameters.
  struct Layer {
    std::unique_ptr<Linear> wq, wk, wv, wo;
    std::unique_ptr<Linear> ffn1, ffn2;
    tensor::Tensor ln1_gamma, ln1_beta;
    tensor::Tensor ln2_gamma, ln2_beta;
  };

  TransformerOptions options_;
  int64_t input_dim_ = 0;
  int64_t output_dim_ = 0;
  std::vector<tensor::BlockSpec> in_blocks_;
  std::vector<tensor::BlockSpec> out_blocks_;

  tensor::Tensor bos_;        // [1, d_model] learned start token
  tensor::Tensor pos_table_;  // [N, d_model] learned positional embeddings
  std::vector<std::unique_ptr<Linear>> in_proj_;  // N-1 projections (blocks 0..N-2)
  std::vector<Layer> layers_;
  tensor::Tensor final_gamma_, final_beta_;
  std::vector<std::unique_ptr<Linear>> heads_;  // N output heads
};

}  // namespace duet::nn

#endif  // DUET_NN_TRANSFORMER_H_
