#include "nn/transformer.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/attention_ops.h"

namespace duet::nn {

using tensor::Tensor;

namespace {

/// Small gaussian init for embedding-like parameters (GPT-2's 0.02 scale).
Tensor GaussianParam(std::vector<int64_t> shape, Rng& rng, float scale = 0.02f) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  std::vector<float> data(static_cast<size_t>(n));
  for (float& v : data) v = scale * static_cast<float>(rng.Gaussian());
  return Tensor::FromVector(std::move(shape), std::move(data), /*requires_grad=*/true);
}

Tensor ConstantParam(int64_t n, float fill) {
  return Tensor::Full({n}, fill, /*requires_grad=*/true);
}

}  // namespace

BlockTransformer::BlockTransformer(TransformerOptions options, Rng& rng)
    : options_(std::move(options)) {
  const int n = static_cast<int>(options_.input_widths.size());
  DUET_CHECK_GT(n, 0);
  DUET_CHECK_EQ(options_.output_widths.size(), options_.input_widths.size());
  TransformerConfig& cfg = options_.config;
  if (cfg.ffn_hidden == 0) cfg.ffn_hidden = 4 * cfg.d_model;
  DUET_CHECK_GT(cfg.d_model, 0);
  DUET_CHECK_GT(cfg.num_heads, 0);
  DUET_CHECK_EQ(cfg.d_model % cfg.num_heads, 0);

  for (int i = 0; i < n; ++i) {
    in_blocks_.push_back({input_dim_, options_.input_widths[static_cast<size_t>(i)]});
    input_dim_ += options_.input_widths[static_cast<size_t>(i)];
    out_blocks_.push_back({output_dim_, options_.output_widths[static_cast<size_t>(i)]});
    output_dim_ += options_.output_widths[static_cast<size_t>(i)];
  }

  bos_ = RegisterParam(GaussianParam({1, cfg.d_model}, rng));
  pos_table_ = RegisterParam(GaussianParam({n, cfg.d_model}, rng));

  // Token i >= 1 embeds input block i-1; block n-1 is never attended (no
  // output conditions on it), matching MADE's degree assignment.
  for (int i = 0; i + 1 < n; ++i) {
    in_proj_.push_back(std::make_unique<Linear>(
        options_.input_widths[static_cast<size_t>(i)], cfg.d_model, rng));
    RegisterChild(*in_proj_.back());
  }

  for (int l = 0; l < cfg.num_layers; ++l) {
    Layer layer;
    layer.wq = std::make_unique<Linear>(cfg.d_model, cfg.d_model, rng);
    layer.wk = std::make_unique<Linear>(cfg.d_model, cfg.d_model, rng);
    layer.wv = std::make_unique<Linear>(cfg.d_model, cfg.d_model, rng);
    layer.wo = std::make_unique<Linear>(cfg.d_model, cfg.d_model, rng);
    layer.ffn1 = std::make_unique<Linear>(cfg.d_model, cfg.ffn_hidden, rng);
    layer.ffn2 = std::make_unique<Linear>(cfg.ffn_hidden, cfg.d_model, rng);
    layer.ln1_gamma = RegisterParam(ConstantParam(cfg.d_model, 1.0f));
    layer.ln1_beta = RegisterParam(ConstantParam(cfg.d_model, 0.0f));
    layer.ln2_gamma = RegisterParam(ConstantParam(cfg.d_model, 1.0f));
    layer.ln2_beta = RegisterParam(ConstantParam(cfg.d_model, 0.0f));
    RegisterChild(*layer.wq);
    RegisterChild(*layer.wk);
    RegisterChild(*layer.wv);
    RegisterChild(*layer.wo);
    RegisterChild(*layer.ffn1);
    RegisterChild(*layer.ffn2);
    layers_.push_back(std::move(layer));
  }

  final_gamma_ = RegisterParam(ConstantParam(cfg.d_model, 1.0f));
  final_beta_ = RegisterParam(ConstantParam(cfg.d_model, 0.0f));

  for (int i = 0; i < n; ++i) {
    heads_.push_back(std::make_unique<Linear>(
        cfg.d_model, options_.output_widths[static_cast<size_t>(i)], rng));
    RegisterChild(*heads_.back());
  }
}

Tensor BlockTransformer::Forward(const Tensor& x) const {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(x.dim(1), input_dim_);
  const int64_t b = x.dim(0);
  const int64_t n = num_columns();
  const TransformerConfig& cfg = options_.config;
  const int64_t d = cfg.d_model;
  const int64_t heads = cfg.num_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d / heads));

  // Assemble the token sequence [B*N, d]: BOS, then projected blocks 0..n-2.
  std::vector<Tensor> parts;
  parts.reserve(static_cast<size_t>(n));
  parts.push_back(tensor::MatMul(Tensor::Full({b, 1}, 1.0f), bos_));
  for (int64_t i = 1; i < n; ++i) {
    const tensor::BlockSpec& blk = in_blocks_[static_cast<size_t>(i - 1)];
    const Tensor block = tensor::SliceCols(x, blk.offset, blk.len);
    parts.push_back(in_proj_[static_cast<size_t>(i - 1)]->Forward(block));
  }
  // ConcatCols yields [B, N*d]; row-major reshape interleaves to [B*N, d]
  // with token t of batch r at row r*N + t.
  Tensor seq = tensor::Reshape(tensor::ConcatCols(parts), {b * n, d});
  seq = tensor::AddRowBroadcast(seq, pos_table_);

  for (const Layer& layer : layers_) {
    const Tensor h = tensor::LayerNorm(seq, layer.ln1_gamma, layer.ln1_beta);
    const Tensor qh = tensor::SplitHeads(layer.wq->Forward(h), b, n, heads);
    const Tensor kh = tensor::SplitHeads(layer.wk->Forward(h), b, n, heads);
    const Tensor vh = tensor::SplitHeads(layer.wv->Forward(h), b, n, heads);
    const Tensor scores = tensor::BatchedScores(qh, kh, b * heads, n, scale);
    const Tensor attn = tensor::CausalSoftmaxRows(scores, n);
    const Tensor ctx = tensor::BatchedAttend(attn, vh, b * heads, n);
    const Tensor merged = tensor::MergeHeads(ctx, b, n, heads);
    seq = tensor::Add(seq, layer.wo->Forward(merged));

    const Tensor h2 = tensor::LayerNorm(seq, layer.ln2_gamma, layer.ln2_beta);
    const Tensor ffn = layer.ffn2->Forward(tensor::Gelu(layer.ffn1->Forward(h2)));
    seq = tensor::Add(seq, ffn);
  }

  seq = tensor::LayerNorm(seq, final_gamma_, final_beta_);

  // Head i reads position i: regroup to [B, N*d] and slice per column.
  const Tensor grid = tensor::Reshape(seq, {b, n * d});
  std::vector<Tensor> outs;
  outs.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const Tensor hidden = tensor::SliceCols(grid, i * d, d);
    outs.push_back(heads_[static_cast<size_t>(i)]->Forward(hidden));
  }
  return tensor::ConcatCols(outs);
}

}  // namespace duet::nn
