// MADE / ResMADE: masked autoregressive networks over column blocks.
//
// This is the shared neural substrate of Naru, UAE and Duet (paper Sec.
// V-A4). Inputs are laid out as one contiguous block per table column (the
// block content differs between the methods: value encodings for Naru/UAE,
// predicate encodings for Duet); outputs are one logit block per column with
// one logit per distinct value. The binary connectivity masks enforce the
// autoregressive property: output block i depends only on input blocks < i,
// so column 0's head is input-independent (its marginal lives in the bias).
//
// Every masked layer (plain MADE and both ResMADE paths) routes through
// MaskedLinear, so inference forwards inherit its packed-weights cache: with
// gradients disabled, W o M is packed once per parameter version instead of
// materialized per forward, in the backend chosen via SetInferenceBackend
// (dense fp32 / CSR sparse / int8 / f16 — see nn/layers.h and
// tensor/packed_weights.h for the formats and invalidation rules).
// Forward is safe to call concurrently while parameters are frozen.
//
// Compiled plans: by default a no-grad Forward executes through a compiled
// InferencePlan (nn/inference_plan.h) — the whole layer walk flattened into
// a packed-op program with the degree-sorted output permutation applied to
// every masked layer, cached per (backend, parameter version). Dense/CSR
// plans are bitwise-equal to the uncompiled path; SetPlanEnabled(false)
// restores the per-layer path.
#ifndef DUET_NN_MADE_H_
#define DUET_NN_MADE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/backbone.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::nn {

/// Configuration for a column-blocked MADE.
struct MadeOptions {
  /// Per-column input block width (encoding width of column i).
  std::vector<int64_t> input_widths;
  /// Per-column output block width (number of distinct values of column i).
  std::vector<int64_t> output_widths;
  /// Hidden layer sizes; for residual=true all entries must be equal.
  std::vector<int64_t> hidden_sizes;
  /// Use ResMADE residual blocks (UAE's architecture for Kddcup98/Census)
  /// instead of a plain masked MLP (Naru's architecture for DMV).
  bool residual = false;
};

/// Column-blocked masked autoregressive network.
class Made : public Backbone {
 public:
  Made(MadeOptions options, Rng& rng);

  /// x: [B, sum(input_widths)] -> logits [B, sum(output_widths)].
  tensor::Tensor Forward(const tensor::Tensor& x) const override;

  /// Output logit block layout, one block per column.
  const std::vector<tensor::BlockSpec>& output_blocks() const override { return out_blocks_; }

  /// Input block layout, one block per column.
  const std::vector<tensor::BlockSpec>& input_blocks() const override { return in_blocks_; }

  int64_t input_dim() const override { return input_dim_; }
  int64_t output_dim() const override { return output_dim_; }
  int num_columns() const override {
    return static_cast<int>(options_.input_widths.size());
  }

  /// Forwards the backend selection to every masked layer (both the plain
  /// and the ResMADE path) and to the plan cache; each repacks/recompiles
  /// lazily on its next no-grad forward.
  void SetInferenceBackend(tensor::WeightBackend backend) const override;

  /// Pins every masked layer's pack and the plan cache to `stamp` (snapshot
  /// publication; see nn/module.h).
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const override;

  /// Total packed-cache bytes across all masked layers + the compiled plan.
  uint64_t CachedBytes() const override;

  /// Flattens the (Res)MADE layer walk into a packed-op program with the
  /// degree-sorted output permutation applied to every masked layer.
  std::shared_ptr<const InferencePlan> Compile(tensor::WeightBackend backend) const override;
  void SetPlanEnabled(bool enabled) const override;
  uint64_t PlanBytes() const override;
  PlanTelemetry PlanInfo() const override;

  const MadeOptions& options() const { return options_; }

 private:
  MadeOptions options_;
  int64_t input_dim_ = 0;
  int64_t output_dim_ = 0;
  std::vector<tensor::BlockSpec> in_blocks_;
  std::vector<tensor::BlockSpec> out_blocks_;
  std::vector<MaskedLinear> layers_;  // plain MADE path
  // ResMADE path: input projection, residual pairs, output projection.
  std::unique_ptr<MaskedLinear> res_input_;
  std::vector<MaskedLinear> res_layers_;  // 2 per residual block
  std::unique_ptr<MaskedLinear> res_output_;
  std::unique_ptr<InferencePlanCache> plan_cache_;
};

/// Builds the [in_dim, out_dim] 0/1 mask connecting units with degrees
/// `in_deg` to units with degrees `out_deg` under rule:
///   strict == false: allowed iff out_deg[k] >= in_deg[j]   (hidden layers)
///   strict == true : allowed iff out_deg[k] >  in_deg[j]   (output layer)
/// Exposed for tests.
tensor::Tensor BuildMadeMask(const std::vector<int32_t>& in_deg,
                             const std::vector<int32_t>& out_deg, bool strict);

/// Degree assignment helpers (exposed for tests).
std::vector<int32_t> MadeInputDegrees(const std::vector<int64_t>& widths);
std::vector<int32_t> MadeHiddenDegrees(int64_t size, int num_columns);
std::vector<int32_t> MadeOutputDegrees(const std::vector<int64_t>& widths);

}  // namespace duet::nn

#endif  // DUET_NN_MADE_H_
