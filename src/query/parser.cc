#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace duet::query {

namespace {

/// Token kinds of the WHERE fragment.
enum class TokenKind { kIdent, kNumber, kOp, kAnd, kOr, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t pos = 0;
};

/// Case-insensitive keyword comparison.
bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  /// Scans the next token; reports lexical errors through *error.
  bool Next(Token* token, std::string* error) {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    token->pos = pos_;
    if (pos_ >= text_.size()) {
      token->kind = TokenKind::kEnd;
      token->text.clear();
      return true;
    }
    const char c = text_[pos_];
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      size_t len = 1;
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') len = 2;
      token->text = text_.substr(pos_, len);
      if (token->text == "!" || token->text == "!=") {
        *error = Describe(pos_, "operator '!=' is not supported (paper ops: = < > <= >=)");
        return false;
      }
      token->kind = TokenKind::kOp;
      pos_ += len;
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' || c == '.') {
      size_t end = pos_ + 1;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '.' ||
              text_[end] == 'e' || text_[end] == 'E' || text_[end] == '-' ||
              text_[end] == '+')) {
        // Sign characters only continue a number right after an exponent.
        if ((text_[end] == '-' || text_[end] == '+') &&
            !(text_[end - 1] == 'e' || text_[end - 1] == 'E')) {
          break;
        }
        ++end;
      }
      token->kind = TokenKind::kNumber;
      token->text = text_.substr(pos_, end - pos_);
      pos_ = end;
      return true;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_ + 1;
      while (end < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                                    text_[end] == '_')) {
        ++end;
      }
      token->text = text_.substr(pos_, end - pos_);
      pos_ = end;
      if (EqualsIgnoreCase(token->text, "and")) {
        token->kind = TokenKind::kAnd;
      } else if (EqualsIgnoreCase(token->text, "or")) {
        token->kind = TokenKind::kOr;
      } else {
        token->kind = TokenKind::kIdent;
      }
      return true;
    }
    *error = Describe(pos_, std::string("unexpected character '") + c + "'");
    return false;
  }

  std::string Describe(size_t pos, const std::string& cause) const {
    std::ostringstream os;
    os << "parse error at position " << pos << ": " << cause;
    return os.str();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

/// Maps an operator token to PredOp.
bool OpFromText(const std::string& text, PredOp* op) {
  if (text == "=" || text == "==") {
    *op = PredOp::kEq;
  } else if (text == ">") {
    *op = PredOp::kGt;
  } else if (text == "<") {
    *op = PredOp::kLt;
  } else if (text == ">=") {
    *op = PredOp::kGe;
  } else if (text == "<=") {
    *op = PredOp::kLe;
  } else {
    return false;
  }
  return true;
}

/// Resolves a column name against the schema (-1 if unknown).
int ColumnIndex(const data::Table& table, const std::string& name) {
  for (int c = 0; c < table.num_columns(); ++c) {
    if (table.column(c).name() == name) return c;
  }
  return -1;
}

}  // namespace

bool ParseWhere(const std::string& text, const data::Table& table, ParsedWhere* out,
                std::string* error) {
  Lexer lexer(text);
  Token token;
  if (!lexer.Next(&token, error)) return false;

  ParsedWhere result;
  result.clauses.emplace_back();
  bool expect_predicate = true;
  while (true) {
    if (token.kind == TokenKind::kEnd) {
      if (expect_predicate) {
        *error = lexer.Describe(token.pos, result.clauses.size() == 1 &&
                                               result.clauses[0].predicates.empty()
                                           ? "empty expression"
                                           : "dangling AND/OR");
        return false;
      }
      break;
    }
    if (expect_predicate) {
      // pred := ident op number
      if (token.kind != TokenKind::kIdent) {
        *error = lexer.Describe(token.pos, "expected a column name, got '" + token.text + "'");
        return false;
      }
      const int col = ColumnIndex(table, token.text);
      if (col < 0) {
        *error = lexer.Describe(token.pos, "unknown column '" + token.text + "'");
        return false;
      }
      if (!lexer.Next(&token, error)) return false;
      PredOp op;
      if (token.kind != TokenKind::kOp || !OpFromText(token.text, &op)) {
        *error = lexer.Describe(token.pos, "expected an operator (= < > <= >=), got '" +
                                               token.text + "'");
        return false;
      }
      if (!lexer.Next(&token, error)) return false;
      if (token.kind != TokenKind::kNumber) {
        *error = lexer.Describe(token.pos, "expected a numeric constant, got '" +
                                               token.text + "'");
        return false;
      }
      char* end = nullptr;
      const double value = std::strtod(token.text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        *error = lexer.Describe(token.pos, "malformed number '" + token.text + "'");
        return false;
      }
      result.clauses.back().predicates.push_back({col, op, value});
      expect_predicate = false;
    } else {
      // connective := AND | OR
      if (token.kind == TokenKind::kAnd) {
        expect_predicate = true;
      } else if (token.kind == TokenKind::kOr) {
        result.clauses.emplace_back();
        expect_predicate = true;
      } else {
        *error =
            lexer.Describe(token.pos, "expected AND/OR, got '" + token.text + "'");
        return false;
      }
    }
    if (!lexer.Next(&token, error)) return false;
  }
  *out = std::move(result);
  return true;
}

}  // namespace duet::query
