// Estimator interface and the Q-error metric (paper Eq. 4).
#ifndef DUET_QUERY_ESTIMATOR_H_
#define DUET_QUERY_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"

namespace duet::tensor {
// Opaque declarations (definitions: tensor/packed_weights.h and
// tensor/tensor.h) so every estimator TU does not pull in the packed-kernel
// headers for one enum passed by value and one struct passed by reference.
enum class WeightBackend : int32_t;
struct SnapshotStamp;
}  // namespace duet::tensor

namespace duet::query {

/// Common interface of every cardinality estimator in the repository
/// (traditional, query-driven, data-driven and hybrid).
///
/// Thread-safety contract (the serving engine relies on it): while the
/// wrapped model's parameters are unchanging, EstimateSelectivity and
/// EstimateSelectivityBatch must be safe to call concurrently from multiple
/// threads — estimation must not mutate shared state without internal
/// synchronization. The in-tree neural estimators comply: activations live
/// in per-thread inference arenas, sampling-based estimators (Naru/UAE)
/// derive their randomness from per-query deterministic seeds rather than a
/// shared RNG, and Duet/MPSN's masked-weight caches publish under internal
/// locks. Training, fine-tuning and checkpoint loading are NOT safe
/// concurrently with estimation *on the same model instance*. Online
/// updates therefore never mutate a served model in place: they fine-tune a
/// clone and publish it as an immutable snapshot that new dispatches swap
/// to atomically, while in-flight batches finish on the snapshot they
/// started on (see serve/model_registry.h and serve/serving_engine.h —
/// training a *different* model instance concurrently with estimation is
/// safe).
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Estimated selectivity in [0, 1].
  virtual double EstimateSelectivity(const Query& query) = 0;

  /// Batch-first entry point: estimates all queries at once. The default
  /// implementation loops the scalar path; neural estimators override it
  /// with a true batched forward (one GEMM for the whole batch, shared
  /// sampling rounds), which is how serving-style throughput is reached.
  /// Overrides must return exactly what the per-query path returns for each
  /// query, in order — and, for the neural estimators, independently of how
  /// the caller groups queries into batches (per-row results are bitwise
  /// batch-size-invariant; this is what lets the serving engine shard a
  /// batch across threads without changing results).
  virtual std::vector<double> EstimateSelectivityBatch(const std::vector<Query>& queries);

  /// Selects the inference-side packed-weight backend (dense fp32 / CSR
  /// sparse / int8 / f16 — see tensor/packed_weights.h). Estimators without
  /// a packed weight path ignore it (default). Configure before sharing the
  /// estimator with serving threads: with estimates in flight the switch is
  /// memory-safe (packs and plans publish atomically — no torn views, see
  /// nn/layers.h), but a racing forward may serve either backend. Model
  /// snapshots are configured exactly once, at publish time.
  virtual void SetInferenceBackend(tensor::WeightBackend backend) { (void)backend; }

  /// Declares the wrapped model's parameters permanently frozen and pins
  /// its inference caches to `stamp` (snapshot publication — the
  /// serve::ModelRegistry hook, see nn/module.h for the pinning rules).
  /// Estimators over mutable or cache-free models ignore it (default).
  virtual void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) { (void)stamp; }

  /// Feedback hook for online adaptation: reports the observed true
  /// cardinality of a query this estimator served, once the execution
  /// engine has run the query and counted the result. The default ignores
  /// it; adaptive serving stacks route these pairs into a feedback buffer
  /// that a background fine-tune worker drains (serve/update_worker.h).
  /// Must be cheap and thread-safe — it is called on the serving path.
  virtual void ObserveTrueCardinality(const Query& query, double true_cardinality) {
    (void)query;
    (void)true_cardinality;
  }

  /// Bytes currently held by packed-weight inference caches, including the
  /// compiled plan's packs (0 for estimators without one, or before the
  /// first estimate populates them).
  virtual uint64_t PackedWeightBytes() const { return 0; }

  /// Enables/disables compiled-plan execution (nn/inference_plan.h) for
  /// no-grad forwards. Default on for neural estimators; model-free
  /// estimators ignore it. Configure before sharing, like
  /// SetInferenceBackend.
  virtual void SetPlanEnabled(bool enabled) { (void)enabled; }

  /// Bytes held by compiled inference plans (0 without plan support or
  /// before the first no-grad forward compiles one).
  virtual uint64_t PlanBytes() const { return 0; }

  /// Cumulative wall-clock microseconds spent compiling inference plans.
  virtual uint64_t PlanCompileMicros() const { return 0; }

  /// Cumulative no-grad forwards served from an already-compiled plan.
  virtual uint64_t PlanCacheHits() const { return 0; }

  /// Display name for bench tables.
  virtual std::string name() const = 0;

  /// In-memory model size in MiB (0 for model-free estimators).
  virtual double SizeMB() const { return 0.0; }

  /// Convenience: selectivity * |T|, floored at 1 tuple (the standard
  /// Q-error convention so empty estimates are comparable). The raw network
  /// output is clamped into [0, 1] first — an untrained or diverged net can
  /// emit NaN or out-of-range values, which must not poison Q-errors.
  double EstimateCardinality(const Query& query, int64_t num_rows);

  /// Batched EstimateCardinality over EstimateSelectivityBatch.
  std::vector<double> EstimateCardinalityBatch(const std::vector<Query>& queries,
                                               int64_t num_rows);

  /// Clamps a raw selectivity into [0, 1]; NaN maps to 0.
  static double ClampSelectivity(double sel);
};

/// Q-Error = max(est, actual) / min(est, actual) with both floored at 1.
double QError(double estimated_cardinality, double true_cardinality);

/// Evaluates an estimator over a labeled workload; returns per-query q-errors.
std::vector<double> EvaluateQErrors(CardinalityEstimator& estimator, const Workload& workload,
                                    int64_t num_rows);

}  // namespace duet::query

#endif  // DUET_QUERY_ESTIMATOR_H_
