#include "query/query.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace duet::query {

const char* PredOpName(PredOp op) {
  switch (op) {
    case PredOp::kEq:
      return "=";
    case PredOp::kGt:
      return ">";
    case PredOp::kLt:
      return "<";
    case PredOp::kGe:
      return ">=";
    case PredOp::kLe:
      return "<=";
  }
  return "?";
}

CodeRange RangeForPredicate(const data::Column& column, PredOp op, double value) {
  const int32_t ndv = column.ndv();
  switch (op) {
    case PredOp::kEq: {
      const int32_t c = column.CodeOf(value);
      if (c < 0) return {0, 0};
      return {c, c + 1};
    }
    case PredOp::kGt:
      return {column.UpperBound(value), ndv};
    case PredOp::kGe:
      return {column.LowerBound(value), ndv};
    case PredOp::kLt:
      return {0, column.LowerBound(value)};
    case PredOp::kLe:
      return {0, column.UpperBound(value)};
  }
  return {0, 0};
}

CodeRange IntersectRanges(CodeRange a, CodeRange b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

bool Query::HasMultiPredicateColumn() const {
  std::set<int> seen;
  for (const Predicate& p : predicates) {
    if (!seen.insert(p.col).second) return true;
  }
  return false;
}

int Query::NumConstrainedColumns() const {
  std::set<int> seen;
  for (const Predicate& p : predicates) seen.insert(p.col);
  return static_cast<int>(seen.size());
}

std::vector<CodeRange> Query::PerColumnRanges(const data::Table& table) const {
  std::vector<CodeRange> ranges(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    ranges[static_cast<size_t>(c)] = {0, table.column(c).ndv()};
  }
  for (const Predicate& p : predicates) {
    DUET_CHECK_GE(p.col, 0);
    DUET_CHECK_LT(p.col, table.num_columns());
    const CodeRange r = RangeForPredicate(table.column(p.col), p.op, p.value);
    auto& dst = ranges[static_cast<size_t>(p.col)];
    dst = IntersectRanges(dst, r);
  }
  return ranges;
}

std::string Query::DebugString(const data::Table& table) const {
  std::ostringstream os;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) os << " AND ";
    const Predicate& p = predicates[i];
    os << table.column(p.col).name() << " " << PredOpName(p.op) << " " << p.value;
  }
  return os.str();
}

}  // namespace duet::query
