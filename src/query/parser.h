// A small WHERE-clause parser: text predicates -> query::Query DNF.
//
// The estimators consume structured predicates; tools and examples (the CSV
// estimator, ad-hoc exploration) want text. The grammar is the fragment the
// paper's query model supports (Sec. III): conjunctions of
// column-op-constant predicates, with OR producing DNF clauses that
// core::EstimateDisjunction evaluates by inclusion-exclusion:
//
//   expr := conj ('OR' conj)*
//   conj := pred ('AND' pred)*
//   pred := column op number
//   op   := '=' | '==' | '<' | '>' | '<=' | '>='
//
// AND binds tighter than OR (so the parse *is* the DNF); keywords are
// case-insensitive; column names resolve against the table schema. Parsing
// user text must not abort the process, so errors are reported through a
// message out-parameter instead of DUET_CHECK.
#ifndef DUET_QUERY_PARSER_H_
#define DUET_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "query/query.h"

namespace duet::query {

/// Parse result: a disjunction of conjunctive clauses (size 1 = plain
/// conjunction).
struct ParsedWhere {
  std::vector<Query> clauses;
  bool is_conjunction() const { return clauses.size() == 1; }
};

/// Parses `text` against `table`'s schema. Returns true on success; on
/// failure returns false and describes the problem in *error (position and
/// cause), leaving *out untouched.
bool ParseWhere(const std::string& text, const data::Table& table, ParsedWhere* out,
                std::string* error);

}  // namespace duet::query

#endif  // DUET_QUERY_PARSER_H_
