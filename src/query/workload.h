// Workload generation following the paper's Sec. V-A2 protocol.
//
// Queries are anchored on a sampled tuple: pick k columns, give each a
// random operator from {=, >, <, >=, <=} and a value drawn uniformly from
// the range the anchor satisfies (the Algorithm 1 rule), so the anchor
// always satisfies the query and selectivities span many orders of
// magnitude. Three workload flavours are reproduced:
//   * training / In-Q: gamma-distributed predicate count (skewed like real
//     workloads), optional bounded column (only 1% of a large column's
//     distinct values ever appear in training predicates), seed 42;
//   * Rand-Q: uniform predicate count, no bounded column, seed 1234 —
//     deliberately drifted from the training distribution;
//   * MPSN workloads: optional two-sided ranges (two predicates on one
//     column) to exercise multi-predicate support (Sec. IV-F).
#ifndef DUET_QUERY_WORKLOAD_H_
#define DUET_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/table.h"
#include "query/query.h"

namespace duet::query {

/// Knobs for one workload.
struct WorkloadSpec {
  int num_queries = 1000;
  uint64_t seed = 42;
  /// Gamma-skewed predicate count (training / In-Q) vs uniform (Rand-Q).
  bool gamma_num_predicates = false;
  double gamma_shape = 2.0;
  double gamma_scale = 1.2;
  /// Bounded column (paper: "sample 1% of its distinct values"); -1 = none.
  int bounded_column = -1;
  double bounded_fraction = 0.01;
  /// Probability that a constrained column becomes a two-sided range
  /// (>= lo AND <= hi). 0 reproduces the single-predicate main workloads.
  double two_sided_prob = 0.0;
  /// Restrict predicates to the first `max_columns` columns (used by the
  /// Fig. 6 scalability sweep); -1 = all columns.
  int max_columns = -1;
};

/// Deterministic generator over one table.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const data::Table& table, WorkloadSpec spec);

  /// Draws one query (no label).
  Query GenerateQuery(Rng& rng) const;

  /// Generates spec.num_queries queries and labels them with exact counts.
  Workload Generate() const;

  /// The restricted value set of the bounded column (empty if unbounded).
  const std::vector<double>& bounded_values() const { return bounded_values_; }

 private:
  const data::Table& table_;
  WorkloadSpec spec_;
  std::vector<double> bounded_values_;
};

}  // namespace duet::query

#endif  // DUET_QUERY_WORKLOAD_H_
