// Query model: conjunctions of single-column predicates (paper Sec. III).
//
// Operators are {=, >, <, >=, <=}; a column may carry multiple predicates
// (Duet's MPSN extension, Sec. IV-F). Predicates are translated to
// half-open code intervals against the column's sorted dictionary, which is
// what both the exact evaluator and every estimator consume.
#ifndef DUET_QUERY_QUERY_H_
#define DUET_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"

namespace duet::query {

/// Predicate operator. Numbering matches the paper's Algorithm 1 comment
/// ("=, >, <, >=, <= are numbered"); kNumPredOps is the one-hot width.
enum class PredOp : int32_t {
  kEq = 0,
  kGt = 1,
  kLt = 2,
  kGe = 3,
  kLe = 4,
};
inline constexpr int kNumPredOps = 5;

/// Human-readable operator symbol.
const char* PredOpName(PredOp op);

/// One predicate: column `col` compared against raw value `value`.
struct Predicate {
  int col = 0;
  PredOp op = PredOp::kEq;
  double value = 0.0;
};

/// Half-open code interval [lo, hi); empty iff lo >= hi.
struct CodeRange {
  int32_t lo = 0;
  int32_t hi = 0;
  bool empty() const { return lo >= hi; }
  int32_t size() const { return hi > lo ? hi - lo : 0; }
};

/// Translates one predicate into the matching code interval of `column`.
CodeRange RangeForPredicate(const data::Column& column, PredOp op, double value);

/// Intersection of two code ranges.
CodeRange IntersectRanges(CodeRange a, CodeRange b);

/// Conjunctive query.
struct Query {
  std::vector<Predicate> predicates;

  /// True if some column carries more than one predicate.
  bool HasMultiPredicateColumn() const;

  /// Number of distinct constrained columns.
  int NumConstrainedColumns() const;

  /// Per-column intersected code range; columns without predicates get the
  /// full range [0, ndv). Size == table.num_columns().
  std::vector<CodeRange> PerColumnRanges(const data::Table& table) const;

  std::string DebugString(const data::Table& table) const;
};

/// A query labeled with its true cardinality.
struct LabeledQuery {
  Query query;
  uint64_t cardinality = 0;
};

/// A set of labeled queries.
using Workload = std::vector<LabeledQuery>;

}  // namespace duet::query

#endif  // DUET_QUERY_QUERY_H_
