#include "query/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace duet::query {

double CardinalityEstimator::EstimateCardinality(const Query& query, int64_t num_rows) {
  const double sel = EstimateSelectivity(query);
  return std::max(1.0, std::round(sel * static_cast<double>(num_rows)));
}

double QError(double estimated_cardinality, double true_cardinality) {
  const double est = std::max(1.0, estimated_cardinality);
  const double act = std::max(1.0, true_cardinality);
  return std::max(est, act) / std::min(est, act);
}

std::vector<double> EvaluateQErrors(CardinalityEstimator& estimator, const Workload& workload,
                                    int64_t num_rows) {
  std::vector<double> errors;
  errors.reserve(workload.size());
  for (const LabeledQuery& lq : workload) {
    const double est = estimator.EstimateCardinality(lq.query, num_rows);
    errors.push_back(QError(est, static_cast<double>(lq.cardinality)));
  }
  return errors;
}

}  // namespace duet::query
