#include "query/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace duet::query {

double CardinalityEstimator::ClampSelectivity(double sel) {
  if (std::isnan(sel)) return 0.0;
  return std::clamp(sel, 0.0, 1.0);
}

double CardinalityEstimator::EstimateCardinality(const Query& query, int64_t num_rows) {
  const double sel = ClampSelectivity(EstimateSelectivity(query));
  return std::max(1.0, std::round(sel * static_cast<double>(num_rows)));
}

std::vector<double> CardinalityEstimator::EstimateSelectivityBatch(
    const std::vector<Query>& queries) {
  std::vector<double> sels;
  sels.reserve(queries.size());
  for (const Query& q : queries) sels.push_back(EstimateSelectivity(q));
  return sels;
}

std::vector<double> CardinalityEstimator::EstimateCardinalityBatch(
    const std::vector<Query>& queries, int64_t num_rows) {
  std::vector<double> cards = EstimateSelectivityBatch(queries);
  for (double& c : cards) {
    c = std::max(1.0, std::round(ClampSelectivity(c) * static_cast<double>(num_rows)));
  }
  return cards;
}

double QError(double estimated_cardinality, double true_cardinality) {
  const double est = std::max(1.0, estimated_cardinality);
  const double act = std::max(1.0, true_cardinality);
  return std::max(est, act) / std::min(est, act);
}

std::vector<double> EvaluateQErrors(CardinalityEstimator& estimator, const Workload& workload,
                                    int64_t num_rows) {
  std::vector<Query> queries;
  queries.reserve(workload.size());
  for (const LabeledQuery& lq : workload) queries.push_back(lq.query);
  const std::vector<double> cards = estimator.EstimateCardinalityBatch(queries, num_rows);
  std::vector<double> errors;
  errors.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    errors.push_back(QError(cards[i], static_cast<double>(workload[i].cardinality)));
  }
  return errors;
}

}  // namespace duet::query
