#include "query/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "query/evaluator.h"

namespace duet::query {

WorkloadGenerator::WorkloadGenerator(const data::Table& table, WorkloadSpec spec)
    : table_(table), spec_(spec) {
  if (spec_.max_columns < 0 || spec_.max_columns > table_.num_columns()) {
    spec_.max_columns = table_.num_columns();
  }
  DUET_CHECK_GT(spec_.max_columns, 0);
  if (spec_.bounded_column >= 0) {
    DUET_CHECK_LT(spec_.bounded_column, table_.num_columns());
    const data::Column& col = table_.column(spec_.bounded_column);
    const int32_t take = std::max<int32_t>(
        1, static_cast<int32_t>(std::ceil(col.ndv() * spec_.bounded_fraction)));
    // The subset is part of the workload's identity: derive it from the seed.
    Rng rng(spec_.seed ^ 0xb01dfacecafeULL);
    std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(col.ndv()));
    bounded_values_.reserve(static_cast<size_t>(take));
    for (int32_t i = 0; i < take; ++i) {
      bounded_values_.push_back(col.Value(static_cast<int32_t>(perm[static_cast<size_t>(i)])));
    }
    std::sort(bounded_values_.begin(), bounded_values_.end());
  }
}

Query WorkloadGenerator::GenerateQuery(Rng& rng) const {
  const int ncols = spec_.max_columns;
  // Number of constrained columns.
  int k;
  if (spec_.gamma_num_predicates) {
    k = 1 + static_cast<int>(rng.Gamma(spec_.gamma_shape, spec_.gamma_scale));
  } else {
    k = static_cast<int>(rng.UniformRange(1, ncols));
  }
  k = std::clamp(k, 1, ncols);

  // Pick k distinct columns.
  std::vector<uint32_t> perm = rng.Permutation(static_cast<uint32_t>(ncols));
  perm.resize(static_cast<size_t>(k));
  std::sort(perm.begin(), perm.end());

  // Anchor tuple.
  const int64_t anchor = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(table_.num_rows())));

  Query q;
  for (uint32_t col_idx : perm) {
    const int col = static_cast<int>(col_idx);
    const data::Column& column = table_.column(col);
    const double value = column.Value(table_.code(anchor, col));
    if (spec_.two_sided_prob > 0.0 && column.ndv() > 2 && rng.Bernoulli(spec_.two_sided_prob)) {
      // Two-sided range containing the anchor: lo <= value <= hi with lo/hi
      // sampled uniformly from the codes on each side.
      const int32_t code = table_.code(anchor, col);
      const int32_t lo_code = static_cast<int32_t>(rng.UniformRange(0, code));
      const int32_t hi_code =
          static_cast<int32_t>(rng.UniformRange(code, column.ndv() - 1));
      q.predicates.push_back({col, PredOp::kGe, column.Value(lo_code)});
      q.predicates.push_back({col, PredOp::kLe, column.Value(hi_code)});
      continue;
    }
    PredOp op = static_cast<PredOp>(rng.UniformInt(kNumPredOps));
    if (col == spec_.bounded_column && !bounded_values_.empty()) {
      // Training predicates on the bounded column only ever use the sampled
      // 1% value subset (paper Sec. V-A2).
      const double v = bounded_values_[rng.UniformInt(bounded_values_.size())];
      q.predicates.push_back({col, op, v});
      continue;
    }
    // Draw the predicate value uniformly from the range that keeps the
    // anchor satisfying (the same rule as Algorithm 1), so every generated
    // query selects at least the anchor tuple.
    const int32_t anchor_code = table_.code(anchor, col);
    int32_t lo = 0, hi = -1;  // inclusive code bounds for the value
    switch (op) {
      case PredOp::kEq:
        lo = hi = anchor_code;
        break;
      case PredOp::kGt:
        lo = 0;
        hi = anchor_code - 1;
        break;
      case PredOp::kLt:
        lo = anchor_code + 1;
        hi = column.ndv() - 1;
        break;
      case PredOp::kGe:
        lo = 0;
        hi = anchor_code;
        break;
      case PredOp::kLe:
        lo = anchor_code;
        hi = column.ndv() - 1;
        break;
    }
    if (lo > hi) {  // infeasible op for this anchor: degrade to equality
      op = PredOp::kEq;
      q.predicates.push_back({col, op, value});
      continue;
    }
    const int32_t code =
        lo + static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(hi - lo + 1)));
    q.predicates.push_back({col, op, column.Value(code)});
  }
  return q;
}

Workload WorkloadGenerator::Generate() const {
  Rng rng(spec_.seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(spec_.num_queries));
  for (int i = 0; i < spec_.num_queries; ++i) queries.push_back(GenerateQuery(rng));
  ExactEvaluator evaluator(table_);
  const std::vector<uint64_t> counts = evaluator.CountBatch(queries);
  Workload workload(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    workload[i].query = std::move(queries[i]);
    workload[i].cardinality = counts[i];
  }
  return workload;
}

}  // namespace duet::query
