#include "query/evaluator.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace duet::query {

namespace {

/// Compiled predicate: contiguous code interval per constrained column,
/// ordered most-selective-first so row scans exit early.
struct CompiledRange {
  const int32_t* codes;
  int32_t lo;
  int32_t hi;  // half-open
};

uint64_t CountCompiled(const std::vector<CompiledRange>& ranges, int64_t rows) {
  uint64_t count = 0;
  for (int64_t r = 0; r < rows; ++r) {
    bool ok = true;
    for (const CompiledRange& cr : ranges) {
      const int32_t code = cr.codes[r];
      if (code < cr.lo || code >= cr.hi) {
        ok = false;
        break;
      }
    }
    count += ok ? 1 : 0;
  }
  return count;
}

}  // namespace

uint64_t ExactEvaluator::Count(const Query& query) const {
  const std::vector<CodeRange> ranges = query.PerColumnRanges(table_);
  std::vector<CompiledRange> compiled;
  for (int c = 0; c < table_.num_columns(); ++c) {
    const CodeRange& cr = ranges[static_cast<size_t>(c)];
    if (cr.empty()) return 0;
    if (cr.lo == 0 && cr.hi == table_.column(c).ndv()) continue;  // wildcard
    compiled.push_back({table_.column(c).codes().data(), cr.lo, cr.hi});
  }
  if (compiled.empty()) return static_cast<uint64_t>(table_.num_rows());
  // Most selective range first: cheap heuristic by relative code coverage.
  std::sort(compiled.begin(), compiled.end(), [](const CompiledRange& a, const CompiledRange& b) {
    return (a.hi - a.lo) < (b.hi - b.lo);
  });
  return CountCompiled(compiled, table_.num_rows());
}

std::vector<uint64_t> ExactEvaluator::CountBatch(const std::vector<Query>& queries) const {
  std::vector<uint64_t> counts(queries.size());
  ParallelFor(
      0, static_cast<int64_t>(queries.size()),
      [&](int64_t i) { counts[static_cast<size_t>(i)] = Count(queries[static_cast<size_t>(i)]); },
      /*parallel=*/queries.size() > 4, /*grain=*/1);
  return counts;
}

}  // namespace duet::query
