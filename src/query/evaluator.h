// Exact cardinality evaluation (ground truth for training labels, test
// workloads and the Q-error metric).
#ifndef DUET_QUERY_EVALUATOR_H_
#define DUET_QUERY_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/query.h"

namespace duet::query {

/// Scans the table with per-column code-range tests. Queries are evaluated
/// independently, so batches parallelize across a thread pool.
class ExactEvaluator {
 public:
  explicit ExactEvaluator(const data::Table& table) : table_(table) {}

  /// True cardinality of one query.
  uint64_t Count(const Query& query) const;

  /// True cardinalities for a batch (parallel across queries).
  std::vector<uint64_t> CountBatch(const std::vector<Query>& queries) const;

  const data::Table& table() const { return table_; }

 private:
  const data::Table& table_;
};

}  // namespace duet::query

#endif  // DUET_QUERY_EVALUATOR_H_
