// Per-connection byte ring buffer for the epoll front-end (net/server.h).
//
// The wire hot path must not allocate per frame: sockets are read into (and
// flushed from) one of these per connection, and the buffer only ever grows
// — capacity reached during warm-up is reused for the connection's life, so
// steady-state traffic performs zero allocations here. Data wraps around a
// power-of-two backing store; the scatter/gather span accessors let recv/
// send move bytes straight between the socket and the ring (readv/writev
// shapes), and CopyOut lets the frame decoder lift the few header/payload
// bytes it needs without linearizing the ring.
#ifndef DUET_NET_RING_BUFFER_H_
#define DUET_NET_RING_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace duet::net {

/// One contiguous region of a (possibly wrapped) ring range.
struct RingSpan {
  char* data = nullptr;
  size_t len = 0;
};

/// FIFO byte queue over a power-of-two ring. Not thread-safe: each instance
/// belongs to exactly one event-loop thread.
class RingBuffer {
 public:
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  size_t capacity() const { return buf_.size(); }
  size_t free_space() const { return buf_.size() - len_; }

  /// Grows capacity so at least `n` more bytes fit (next power of two,
  /// linearizing the current contents). No-op when they already fit.
  void EnsureSpace(size_t n) {
    if (free_space() >= n) return;
    size_t cap = buf_.empty() ? 4096 : buf_.size();
    while (cap - len_ < n) cap *= 2;
    std::vector<char> next(cap);
    CopyOut(0, len_, next.data());
    buf_ = std::move(next);
    head_ = 0;
  }

  /// Appends `n` bytes (growing if needed).
  void Append(const void* data, size_t n) {
    EnsureSpace(n);
    const char* src = static_cast<const char*>(data);
    const size_t tail = Index(head_ + len_);
    const size_t first = std::min(n, buf_.size() - tail);
    std::memcpy(buf_.data() + tail, src, first);
    if (n > first) std::memcpy(buf_.data(), src + first, n - first);
    len_ += n;
  }

  /// Free-space spans for a scatter read (socket -> ring). Returns the span
  /// count (0 when full). Call CommitWrite(bytes_read) afterwards.
  int WriteSpans(RingSpan spans[2]) {
    if (free_space() == 0) return 0;
    const size_t tail = Index(head_ + len_);
    const size_t first = std::min(free_space(), buf_.size() - tail);
    spans[0] = {buf_.data() + tail, first};
    if (free_space() > first) {
      spans[1] = {buf_.data(), free_space() - first};
      return 2;
    }
    return 1;
  }
  void CommitWrite(size_t n) { len_ += n; }

  /// Filled spans for a gather write (ring -> socket). Returns the span
  /// count (0 when empty). Call Consume(bytes_written) afterwards.
  int ReadSpans(RingSpan spans[2]) {
    if (len_ == 0) return 0;
    const size_t first = std::min(len_, buf_.size() - head_);
    spans[0] = {buf_.data() + head_, first};
    if (len_ > first) {
      spans[1] = {buf_.data(), len_ - first};
      return 2;
    }
    return 1;
  }

  /// Copies `n` bytes starting `offset` bytes past the head into `dst`
  /// without consuming them. Caller guarantees offset + n <= size().
  void CopyOut(size_t offset, size_t n, void* dst) const {
    if (n == 0) return;  // buf_.data() may be null on an empty ring
    char* out = static_cast<char*>(dst);
    size_t pos = Index(head_ + offset);
    const size_t first = std::min(n, buf_.size() - pos);
    std::memcpy(out, buf_.data() + pos, first);
    if (n > first) std::memcpy(out + first, buf_.data(), n - first);
  }

  /// Drops `n` bytes from the head. Caller guarantees n <= size().
  void Consume(size_t n) {
    head_ = Index(head_ + n);
    len_ -= n;
    if (len_ == 0) head_ = 0;  // cheap relinearization whenever we drain
  }

 private:
  size_t Index(size_t i) const { return buf_.empty() ? 0 : (i & (buf_.size() - 1)); }

  std::vector<char> buf_;  // capacity always a power of two (or empty)
  size_t head_ = 0;
  size_t len_ = 0;
};

}  // namespace duet::net

#endif  // DUET_NET_RING_BUFFER_H_
