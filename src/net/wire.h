// DuetRpc v1: the length-prefixed binary protocol of the network serving
// front-end (docs/networking.md has the frame diagram).
//
// Every frame is a fixed 40-byte header followed by `payload_len` payload
// bytes. The header carries a magic, the protocol version, a frame type, a
// client-chosen correlation id, a type-specific element count, an FNV-1a
// checksum over the payload and an FNV-1a checksum over the preceding
// header bytes — so a bit flip anywhere in a frame is caught before any
// field is trusted, exactly the artifact-container integrity rule
// (artifact/format.h) applied to the wire. Validation failures are clean
// WireStatus errors; the server answers every one by dropping the
// connection (server state, other connections and the serving engine are
// untouched — tests/test_net.cc pins this battery).
//
// Request/response payloads are flat little-endian structs encoded with
// the checkpoint serialization idiom (common/serialize.h ByteCursor on the
// read side): an estimate request is a model key + deadline + the batched
// query predicates, decoded straight into reusable vectors the batch API
// consumes; an estimate response is the per-query serve::Estimate rows
// (selectivity + degradation flags). Snapshot replication reuses the same
// framing: Begin (total size), Chunk (raw artifact bytes), End (whole-
// stream checksum) — the payload bytes ARE the mmap-able artifact file,
// whose own section checksums the replica re-validates before swapping it
// in (artifact/artifact.h).
#ifndef DUET_NET_WIRE_H_
#define DUET_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"
#include "serve/serving_engine.h"

namespace duet::net {

/// "DRpc" little-endian — distinct from the artifact ("Dart") and
/// checkpoint magics so a file handed to the wrong parser fails on the
/// first four bytes.
inline constexpr uint32_t kRpcMagic = 0x63705244;
inline constexpr uint16_t kRpcVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 40;

enum class FrameType : uint16_t {
  kEstimateRequest = 1,   ///< client -> server: batched estimate queries
  kEstimateResponse = 2,  ///< server -> client: batched Estimate rows
  kSnapshotRequest = 3,   ///< replica -> primary: ship the current artifact
  kSnapshotBegin = 4,     ///< primary -> replica: total bytes follow
  kSnapshotChunk = 5,     ///< primary -> replica: raw artifact bytes
  kSnapshotEnd = 6,       ///< primary -> replica: whole-stream checksum
  kError = 7,             ///< server -> client: request-level clean error
};

/// Decoded frame header. `count` is type-specific: queries per estimate
/// request/response, chunk index for kSnapshotChunk, else 0.
struct FrameHeader {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t type = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t count = 0;
  uint64_t payload_checksum = 0;
  uint64_t header_checksum = 0;
};

/// Clean-error result of wire operations (the ArtifactStatus shape).
struct WireStatus {
  bool ok = true;
  std::string error;

  static WireStatus Ok() { return {}; }
  static WireStatus Fail(std::string message) { return {false, std::move(message)}; }
};

/// serve::Estimate degradation flags on the wire.
inline constexpr uint8_t kFlagFallback = 1;
inline constexpr uint8_t kFlagDeadlineExpired = 2;
inline constexpr uint8_t kFlagShed = 4;

/// One batched estimate request. Decode reuses the vectors' capacity, so a
/// connection that keeps one of these decodes steady-state traffic without
/// allocating.
struct EstimateRequest {
  std::string model_key;  ///< empty on fixed/registry-mode servers
  uint64_t deadline_us = 0;
  std::vector<query::Query> queries;
};

/// One batched estimate response. snapshot_id is reserved (0) for now.
struct EstimateResponse {
  uint64_t snapshot_id = 0;
  std::vector<serve::Estimate> estimates;
};

/// Appends one complete frame (header + payload) to `out`.
void AppendFrame(std::string* out, FrameType type, uint64_t request_id, uint32_t count,
                 const void* payload, size_t payload_len);

/// Parses and validates exactly kFrameHeaderBytes of header: magic,
/// version, header checksum, and payload_len <= max_frame_bytes. On error
/// *out is unspecified and the connection must be dropped.
WireStatus ParseFrameHeader(const char* data, uint64_t max_frame_bytes, FrameHeader* out);

/// Verifies `header.payload_checksum` against the payload bytes.
WireStatus VerifyPayload(const FrameHeader& header, const char* payload, size_t len);

/// Estimate request/response payload codecs. Encoders append to *payload
/// (callers reuse the buffer); decoders validate every length against the
/// payload bounds and `count`, returning a clean error on any mismatch.
void EncodeEstimateRequest(const EstimateRequest& request, std::string* payload);
WireStatus DecodeEstimateRequest(const char* payload, size_t len, uint32_t count,
                                 EstimateRequest* out);
void EncodeEstimateResponse(const EstimateResponse& response, std::string* payload);
WireStatus DecodeEstimateResponse(const char* payload, size_t len, uint32_t count,
                                  EstimateResponse* out);

}  // namespace duet::net

#endif  // DUET_NET_WIRE_H_
