// Blocking DuetRpc v1 client + the replica-side snapshot installation
// helpers (docs/networking.md).
//
// RpcClient is the reference protocol implementation: one TCP connection,
// synchronous request/response, every frame validated with the same
// checksum battery the server applies. It exists for three callers — the
// loopback tests (tests/test_net.cc), the wire benchmark
// (bench/bench_net.cc) and the replication example
// (examples/net_serving.cpp) — and doubles as the replica's transport:
// FetchSnapshot pulls a primary's current artifact over the
// Begin/Chunk/End stream, and ReplicateSnapshot validates + hot-swaps it
// into a local ModelZoo, after which the replica serves BITWISE the same
// estimates as the primary (the artifact round-trip guarantee, carried
// over a socket).
//
// Failure containment on install mirrors the zoo's own rule: a torn or
// corrupted transfer is rejected before the rename, so the replica's
// registered artifact — and everything it is currently serving — is
// untouched.
#ifndef DUET_NET_CLIENT_H_
#define DUET_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.h"

namespace duet::serve {
class ModelZoo;
}  // namespace duet::serve

namespace duet::net {

/// Blocking single-connection client. Not thread-safe; use one per thread
/// (bench_net opens one per simulated connection).
class RpcClient {
 public:
  RpcClient() = default;
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;
  RpcClient(RpcClient&& other) noexcept { *this = std::move(other); }
  RpcClient& operator=(RpcClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      next_request_id_ = other.next_request_id_;
    }
    return *this;
  }

  WireStatus Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one batched estimate request (all queries in ONE frame — this is
  /// the wire-level batching the server feeds to the micro-batcher) and
  /// blocks for the response. `model_key` must be empty against
  /// fixed/registry servers and non-empty against zoo servers;
  /// `deadline_us` 0 = no deadline. A server-side kError frame comes back
  /// as a clean failed status with the connection still usable.
  WireStatus EstimateBatch(const std::string& model_key,
                           const std::vector<query::Query>& queries, uint64_t deadline_us,
                           std::vector<serve::Estimate>* out);

  /// Requests the primary's current snapshot artifact and writes the
  /// received bytes to `dest_path` (truncating). The stream is accepted
  /// only if every frame checksum AND the whole-stream checksum AND the
  /// byte count all match — a torn/corrupted transfer fails cleanly and
  /// leaves `dest_path` unwritten. Outputs the shipped snapshot id.
  WireStatus FetchSnapshot(const std::string& dest_path, uint64_t* snapshot_id = nullptr,
                           uint64_t* total_bytes = nullptr);

  /// Test hook: writes raw bytes to the socket (corruption battery).
  WireStatus SendRaw(const void* data, size_t len);

  /// Test hook: blocks until the server closes the connection (drop
  /// detection) or data arrives (protocol violation by the test).
  bool WaitForClose();

 private:
  WireStatus WriteAll(const void* data, size_t len);
  WireStatus ReadExact(void* dst, size_t len);
  /// Reads one validated frame (header + payload).
  WireStatus ReadFrame(FrameHeader* header, std::string* payload);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string send_buf_;
  std::string payload_buf_;
};

/// Validates the artifact at `fetched_path` (full checksum load) and
/// atomically installs it: rename onto `dest_path`, then (re-)Register
/// `key` in the zoo so the NEXT acquire serves the new snapshot while
/// outstanding pins finish on the old one — the replica-side hot swap.
/// On validation failure the fetched file is deleted and the zoo is
/// untouched. `fetched_path` and `dest_path` must be on one filesystem.
WireStatus InstallSnapshot(serve::ModelZoo& zoo, const std::string& key,
                           const std::string& fetched_path, const std::string& dest_path);

/// FetchSnapshot + InstallSnapshot: pulls the primary's current artifact
/// through `client` into `dest_path` (via `dest_path`.fetch) and hot-swaps
/// zoo key `key` onto it. Any failure — transport, torn stream, artifact
/// validation — leaves the zoo serving its previous snapshot.
WireStatus ReplicateSnapshot(RpcClient& client, serve::ModelZoo& zoo, const std::string& key,
                             const std::string& dest_path);

}  // namespace duet::net

#endif  // DUET_NET_CLIENT_H_
