// Observability surface of the network front-end (net/server.h).
//
// Counters are cumulative since Start(); latency percentiles come from
// per-endpoint log-bucketed histograms — the exact scheme ServingStats uses
// (bucket b counts samples in [2^(b-1), 2^b) microseconds, quantile values
// are bucket upper bounds), so wire-side p50/p99/p999 is directly
// comparable with the engine's in-process latency_p50/p99/p999_us at the
// same quantile set. bench/bench_net.cc exports the whole struct in its
// JSON line (docs/benchmarks.md).
#ifndef DUET_NET_NET_STATS_H_
#define DUET_NET_NET_STATS_H_

#include <array>
#include <cstdint>

namespace duet::net {

/// Log-bucketed latency histogram (the ServingEngine bucket scheme).
struct LatencyHistogram {
  std::array<uint64_t, 40> buckets{};
  uint64_t count = 0;

  void Record(int64_t micros) {
    if (micros < 0) micros = 0;
    size_t bucket = 0;
    while (bucket + 1 < buckets.size() && (micros >> bucket) > 0) ++bucket;
    ++buckets[bucket];
    ++count;
  }

  void MergeFrom(const LatencyHistogram& other) {
    for (size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
    count += other.count;
  }

  /// Upper bound of the bucket containing quantile `q` (0 with no samples).
  double Quantile(double q) const {
    if (count == 0) return 0.0;
    const double target = q * static_cast<double>(count);
    double seen = 0.0;
    for (size_t b = 0; b < buckets.size(); ++b) {
      seen += static_cast<double>(buckets[b]);
      if (seen >= target) return static_cast<double>(1LL << b);
    }
    return static_cast<double>(1LL << (buckets.size() - 1));
  }
};

/// Per-endpoint counters + latency percentiles. The estimate endpoint
/// measures decode-complete -> response-encoded per request frame; the
/// snapshot endpoint measures request -> final stream frame enqueued.
struct EndpointStats {
  uint64_t requests = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Cumulative front-end counters plus point-in-time gauges.
struct NetStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;   ///< clean closes (client EOF / Stop)
  /// Connections dropped by the server: every protocol error (bad magic /
  /// version / checksum, oversized frame) closes its connection.
  uint64_t connections_dropped = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  /// Estimate-request frames carrying >= 2 queries: wire-level batching in
  /// effect (one frame -> one micro-batcher group candidate).
  uint64_t batched_frames = 0;
  uint64_t queries = 0;  ///< estimate queries decoded off the wire
  /// Queries answered by the front-end's own admission control (per-
  /// connection / global in-flight budget overflow): served through
  /// ServingEngine::ShedBatch, flagged shed + fallback on the wire.
  uint64_t sheds = 0;
  /// Frames rejected by validation (each also drops its connection).
  uint64_t protocol_errors = 0;
  uint64_t snapshot_streams = 0;          ///< streams completed
  uint64_t snapshot_stream_failures = 0;  ///< aborted mid-stream (fault/I/O)
  uint64_t snapshot_bytes_sent = 0;
  /// In-flight estimate queries (submitted to the engine, response not yet
  /// encoded) when stats() was taken / deepest ever observed.
  int64_t inflight = 0;
  int64_t inflight_high_water = 0;
  EndpointStats estimate;
  EndpointStats snapshot;
};

}  // namespace duet::net

#endif  // DUET_NET_NET_STATS_H_
