// Epoll network serving front-end: DuetRpc v1 over TCP, wired straight
// into the ServingEngine's micro-batcher, plus the snapshot-replication
// endpoint (docs/networking.md).
//
// Architecture: `num_loops` event-loop threads, each owning one epoll set,
// one wakeup eventfd and its share of the connections (loop 0 also owns
// the listener; accepted sockets are handed out round-robin). The hot path
// is allocation- and copy-light by construction:
//
//  * sockets are read into per-connection ring buffers (net/ring_buffer.h)
//    whose capacity persists — steady-state frames allocate nothing;
//  * estimate requests decode straight into a reusable per-connection
//    wire::EstimateRequest whose query vectors feed the engine's existing
//    batch API directly;
//  * every decoded query is submitted through
//    ServingEngine::SubmitWithCallback, so the N queries of one frame —
//    and the frames of N concurrent connections — flow into the SAME
//    micro-batching scheduler and fuse into one batched GEMM dispatch
//    (ServingOptions::fuse_requests): wire-level batching composes with
//    cross-request fusion instead of bypassing it;
//  * responses are encoded from the same reused scratch into the write
//    ring and flushed with gather writes.
//
// Backpressure is end-to-end and bounded everywhere (never unbounded
// buffering):
//
//  * per-connection and global in-flight budgets: a request frame that
//    would exceed either is answered immediately through
//    ServingEngine::ShedBatch — the PR-6 fallback path, flagged shed on
//    the wire — so overload degrades instead of queueing;
//  * queued response bytes above `write_high_water` pause reads from that
//    connection (its TCP window then pushes back on the client), and
//    resume when the ring drains;
//  * snapshot streams are pumped chunk-by-chunk only while the write ring
//    has room — a slow replica never balloons the primary's memory.
//
// Replication endpoint: with a ModelRegistry attached as snapshot source,
// a kSnapshotRequest serializes the CURRENT snapshot via
// SaveCurrentArtifact and streams the artifact bytes (Begin/Chunk/End
// framing, whole-stream checksum) to the replica, which validates and
// hot-swaps it through net::ReplicateSnapshot (client.h). Estimates on
// primary and replica are bitwise-equal — the artifact round-trip
// guarantee carried over a socket.
//
// Protocol failures (bad magic/version/checksum, oversized or truncated
// frames) drop ONLY the offending connection; server state, other
// connections and the engine are untouched (tests/test_net.cc).
//
// Lifetimes: the engine (and attached registry) must outlive the server.
// Stop() closes every connection, then BLOCKS until all in-flight engine
// callbacks have completed, so no callback can outlive the server.
#ifndef DUET_NET_SERVER_H_
#define DUET_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/net_stats.h"
#include "net/wire.h"

namespace duet::serve {
class ModelRegistry;
class ServingEngine;
}  // namespace duet::serve

namespace duet::net {

/// Front-end knobs. Defaults serve loopback benchmarks; production fronts
/// raise the budgets with the engine's own max_queue sized to match.
struct NetServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port() after Start).
  uint16_t port = 0;
  /// Event-loop threads. 1 (the default) is a classic single-threaded
  /// epoll reactor; the engine's worker pool does the heavy lifting either
  /// way, so more loops only pay off at very high connection counts.
  int num_loops = 1;
  /// Frames larger than this are a protocol error (connection dropped).
  uint64_t max_frame_bytes = 1u << 20;
  /// In-flight query budgets (submitted to the engine, response not yet
  /// encoded). A request frame that would exceed either budget is shed
  /// whole through the engine's fallback path, flagged on the wire.
  int64_t max_connection_inflight = 1024;
  int64_t max_global_inflight = 8192;
  /// Queued response bytes above which a connection's reads are paused
  /// until the ring drains (TCP backpressure to the client).
  uint64_t write_high_water = 4u << 20;
  /// Snapshot stream chunk size (one kSnapshotChunk frame per chunk).
  uint64_t snapshot_chunk_bytes = 64u << 10;
  /// Scratch path SaveCurrentArtifact serializes to before streaming
  /// (empty = /tmp/duet_net_<pid>.artifact); suffixed per connection.
  std::string snapshot_scratch_path;
};

/// The front-end. One instance owns its listener, loops and connections;
/// construction is cheap, Start() binds and spawns the loops.
class NetServer {
 public:
  explicit NetServer(serve::ServingEngine& engine, NetServerOptions options = {});
  ~NetServer();  ///< Stop()s if still running.

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Attaches (or detaches, with nullptr) the registry whose CURRENT
  /// snapshot answers kSnapshotRequest streams. Without one, snapshot
  /// requests get a clean kError frame. Call before Start().
  void AttachSnapshotSource(serve::ModelRegistry* registry);

  /// Binds, listens and spawns the event loops. Clean error (nothing
  /// running) on bind/listen failure.
  WireStatus Start();

  /// Closes the listener and every connection, drains in-flight engine
  /// callbacks, and joins the loops. Idempotent.
  void Stop();

  bool running() const { return started_; }
  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Aggregated counters + per-endpoint latency percentiles.
  NetStats stats() const;

 private:
  struct Connection;
  struct Loop;
  struct PendingResponse;

  void LoopMain(Loop* loop);
  void AcceptReady(Loop& loop);
  void AdoptConnection(Loop& loop, int fd);
  /// Socket readable: pulls bytes into the ring and processes complete
  /// frames. Returns false when the connection must close (`dropped` set
  /// for protocol errors).
  bool HandleReadable(Loop& loop, Connection& conn, bool* dropped);
  bool ProcessFrames(Loop& loop, Connection& conn, bool* dropped);
  /// Per-frame outcome: kProtocolError and kAbort both drop the connection;
  /// only the former counts as a protocol error.
  enum class FrameResult { kOk, kProtocolError, kAbort };
  FrameResult HandleEstimateRequest(Loop& loop, Connection& conn, const FrameHeader& header);
  FrameResult HandleSnapshotRequest(Loop& loop, Connection& conn, const FrameHeader& header);
  /// Streams pending snapshot chunks while the write ring has room.
  /// Returns false when the stream was aborted (connection must drop).
  bool PumpSnapshot(Loop& loop, Connection& conn);
  void SendError(Loop& loop, Connection& conn, uint64_t request_id, const std::string& message);
  void SendEstimateResponse(Loop& loop, Connection& conn, uint64_t request_id,
                            const EstimateResponse& response);
  /// Gathers the write ring into the socket (pumping any active snapshot
  /// stream as it drains); arms/disarms EPOLLOUT and read-pause as the ring
  /// fills/drains. Returns false on socket error or aborted stream
  /// (`dropped` distinguishes the abort).
  bool FlushWrites(Loop& loop, Connection& conn, bool* dropped);
  void UpdateEpoll(Loop& loop, Connection& conn);
  void CloseConnection(Loop& loop, uint64_t conn_id, bool dropped);
  /// Called from engine callback context when a response's last query
  /// completes: hands the response to its loop and wakes it.
  void PostCompletion(std::shared_ptr<PendingResponse> response);

  serve::ServingEngine& engine_;
  NetServerOptions options_;
  std::atomic<serve::ModelRegistry*> snapshot_source_{nullptr};
  std::string scratch_base_;

  std::vector<std::unique_ptr<Loop>> loops_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_conn_id_{2};  // 0 = listener, 1 = eventfd
  std::atomic<size_t> next_loop_{0};

  /// Global in-flight budget + Stop() drain barrier.
  std::atomic<int64_t> global_inflight_{0};
  std::atomic<int64_t> inflight_high_water_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace duet::net

#endif  // DUET_NET_SERVER_H_
