#include "net/wire.h"

#include <cstring>

#include "common/serialize.h"

namespace duet::net {

namespace {

/// Little-endian scalar append (the x86/aarch64 targets this repo builds on
/// are little-endian; memcpy keeps the stores alignment-clean).
template <typename T>
void AppendScalar(std::string* out, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out->append(bytes, sizeof(T));
}

}  // namespace

void AppendFrame(std::string* out, FrameType type, uint64_t request_id, uint32_t count,
                 const void* payload, size_t payload_len) {
  const size_t header_at = out->size();
  AppendScalar<uint32_t>(out, kRpcMagic);
  AppendScalar<uint16_t>(out, kRpcVersion);
  AppendScalar<uint16_t>(out, static_cast<uint16_t>(type));
  AppendScalar<uint64_t>(out, request_id);
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(payload_len));
  AppendScalar<uint32_t>(out, count);
  AppendScalar<uint64_t>(out, Fnv1a64(payload, payload_len));
  // Header checksum seals everything above it.
  AppendScalar<uint64_t>(out, Fnv1a64(out->data() + header_at, kFrameHeaderBytes - 8));
  if (payload_len > 0) out->append(static_cast<const char*>(payload), payload_len);
}

WireStatus ParseFrameHeader(const char* data, uint64_t max_frame_bytes, FrameHeader* out) {
  FrameHeader h;
  ByteCursor cursor(data, kFrameHeaderBytes);
  // version + type share 4 bytes; read them as two u16s via a u32.
  uint32_t vt = 0;
  if (!cursor.ReadU32(&h.magic) || !cursor.ReadU32(&vt)) {
    return WireStatus::Fail("short frame header");
  }
  h.version = static_cast<uint16_t>(vt & 0xffffu);
  h.type = static_cast<uint16_t>(vt >> 16);
  if (!cursor.ReadU64(&h.request_id) || !cursor.ReadU32(&h.payload_len) ||
      !cursor.ReadU32(&h.count) || !cursor.ReadU64(&h.payload_checksum) ||
      !cursor.ReadU64(&h.header_checksum)) {
    return WireStatus::Fail("short frame header");
  }
  if (h.magic != kRpcMagic) return WireStatus::Fail("bad frame magic");
  if (h.version != kRpcVersion) {
    return WireStatus::Fail("unsupported protocol version " + std::to_string(h.version));
  }
  if (Fnv1a64(data, kFrameHeaderBytes - 8) != h.header_checksum) {
    return WireStatus::Fail("frame header checksum mismatch");
  }
  if (static_cast<uint64_t>(h.payload_len) > max_frame_bytes) {
    return WireStatus::Fail("oversized frame: " + std::to_string(h.payload_len) +
                            " > max " + std::to_string(max_frame_bytes));
  }
  if (h.type < static_cast<uint16_t>(FrameType::kEstimateRequest) ||
      h.type > static_cast<uint16_t>(FrameType::kError)) {
    return WireStatus::Fail("unknown frame type " + std::to_string(h.type));
  }
  *out = h;
  return WireStatus::Ok();
}

WireStatus VerifyPayload(const FrameHeader& header, const char* payload, size_t len) {
  if (len != header.payload_len) return WireStatus::Fail("payload length mismatch");
  if (Fnv1a64(payload, len) != header.payload_checksum) {
    return WireStatus::Fail("frame payload checksum mismatch");
  }
  return WireStatus::Ok();
}

void EncodeEstimateRequest(const EstimateRequest& request, std::string* payload) {
  AppendScalar<uint16_t>(payload, static_cast<uint16_t>(request.model_key.size()));
  payload->append(request.model_key);
  AppendScalar<uint64_t>(payload, request.deadline_us);
  for (const query::Query& q : request.queries) {
    AppendScalar<uint16_t>(payload, static_cast<uint16_t>(q.predicates.size()));
    for (const query::Predicate& p : q.predicates) {
      AppendScalar<uint32_t>(payload, static_cast<uint32_t>(p.col));
      AppendScalar<uint32_t>(payload, static_cast<uint32_t>(p.op));
      AppendScalar<double>(payload, p.value);
    }
  }
}

WireStatus DecodeEstimateRequest(const char* payload, size_t len, uint32_t count,
                                 EstimateRequest* out) {
  ByteCursor cursor(payload, len);
  uint32_t klen32 = 0;
  {
    // u16 key length read via two raw bytes to keep cursor usage uniform.
    uint8_t raw[2];
    if (cursor.Remaining() < 2) return WireStatus::Fail("truncated estimate request");
    std::memcpy(raw, cursor.Here(), 2);
    cursor.Skip(2);
    klen32 = static_cast<uint32_t>(raw[0]) | (static_cast<uint32_t>(raw[1]) << 8);
  }
  if (cursor.Remaining() < klen32) return WireStatus::Fail("truncated model key");
  out->model_key.assign(cursor.Here(), klen32);
  cursor.Skip(klen32);
  if (!cursor.ReadU64(&out->deadline_us)) return WireStatus::Fail("truncated deadline");
  out->queries.clear();
  out->queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t npreds = 0;
    if (cursor.Remaining() < 2) return WireStatus::Fail("truncated query header");
    std::memcpy(&npreds, cursor.Here(), 2);
    cursor.Skip(2);
    out->queries.emplace_back();
    query::Query& q = out->queries.back();
    q.predicates.resize(npreds);
    for (uint16_t p = 0; p < npreds; ++p) {
      uint32_t col = 0, op = 0;
      double value = 0.0;
      if (!cursor.ReadU32(&col) || !cursor.ReadU32(&op) || !cursor.ReadF64(&value)) {
        return WireStatus::Fail("truncated predicate");
      }
      if (op >= static_cast<uint32_t>(query::kNumPredOps)) {
        return WireStatus::Fail("invalid predicate op " + std::to_string(op));
      }
      q.predicates[p].col = static_cast<int>(col);
      q.predicates[p].op = static_cast<query::PredOp>(op);
      q.predicates[p].value = value;
    }
  }
  if (cursor.Remaining() != 0) return WireStatus::Fail("trailing bytes in estimate request");
  return WireStatus::Ok();
}

void EncodeEstimateResponse(const EstimateResponse& response, std::string* payload) {
  AppendScalar<uint64_t>(payload, response.snapshot_id);
  for (const serve::Estimate& e : response.estimates) {
    AppendScalar<double>(payload, e.selectivity);
    uint8_t flags = 0;
    if (e.fallback) flags |= kFlagFallback;
    if (e.deadline_expired) flags |= kFlagDeadlineExpired;
    if (e.shed) flags |= kFlagShed;
    payload->push_back(static_cast<char>(flags));
  }
}

WireStatus DecodeEstimateResponse(const char* payload, size_t len, uint32_t count,
                                  EstimateResponse* out) {
  ByteCursor cursor(payload, len);
  if (!cursor.ReadU64(&out->snapshot_id)) return WireStatus::Fail("truncated response");
  out->estimates.clear();
  out->estimates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    serve::Estimate e;
    if (!cursor.ReadF64(&e.selectivity)) return WireStatus::Fail("truncated estimate row");
    if (cursor.Remaining() < 1) return WireStatus::Fail("truncated estimate flags");
    const uint8_t flags = static_cast<uint8_t>(*cursor.Here());
    cursor.Skip(1);
    e.fallback = (flags & kFlagFallback) != 0;
    e.deadline_expired = (flags & kFlagDeadlineExpired) != 0;
    e.shed = (flags & kFlagShed) != 0;
    out->estimates.push_back(e);
  }
  if (cursor.Remaining() != 0) return WireStatus::Fail("trailing bytes in estimate response");
  return WireStatus::Ok();
}

}  // namespace duet::net
