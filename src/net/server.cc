#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "common/serialize.h"
#include "net/ring_buffer.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/serving_engine.h"

namespace duet::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Sentinel epoll ids for the two non-connection fds each loop watches.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeupId = 1;

int64_t MicrosSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count();
}

void AppendU64(std::string* out, uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out->append(bytes, 8);
}

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

/// One client socket, owned by exactly one event loop. All scratch buffers
/// only ever grow, so a warm connection serves frames allocation-free.
struct NetServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  RingBuffer rbuf;  ///< socket -> frames
  RingBuffer wbuf;  ///< responses / stream chunks -> socket
  std::string payload;      ///< current frame's payload, lifted off rbuf
  EstimateRequest request;  ///< reusable decode target
  int64_t inflight = 0;     ///< queries submitted, response not yet encoded
  uint32_t epoll_events = 0;
  // Active snapshot stream (at most one per connection).
  bool snap_active = false;
  uint64_t snap_request_id = 0;
  uint64_t snap_offset = 0;
  uint32_t snap_chunk = 0;
  std::string snap_bytes;
  Clock::time_point snap_start;
};

/// One epoll event loop: its fd pair, its connections, its share of the
/// stats, and the inbox other threads hand it work through (completed
/// responses from engine callbacks, adopted sockets from the acceptor).
struct NetServer::Loop {
  int index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;

  std::mutex inbox_mu;
  std::vector<std::shared_ptr<PendingResponse>> completions;
  std::vector<int> adopted_fds;

  mutable std::mutex stats_mu;
  NetStats stats;  ///< loop-local slice; endpoint percentiles unused here
  LatencyHistogram estimate_hist;
  LatencyHistogram snapshot_hist;

  // Frame-assembly scratch, reused across every connection of this loop.
  std::string frame_scratch;
  std::string payload_scratch;

  void Wake() const {
    uint64_t one = 1;
    ssize_t rc = ::write(event_fd, &one, sizeof one);
    (void)rc;  // counter saturation (EAGAIN) still leaves the fd readable
  }
};

/// One estimate-request frame in flight: slots for every query's Estimate,
/// filled by engine callbacks (distinct indices, so no lock); the last
/// callback posts the whole response back to the owning loop.
struct NetServer::PendingResponse {
  Loop* loop = nullptr;
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  Clock::time_point start;
  std::vector<serve::Estimate> estimates;
  std::atomic<int64_t> remaining{0};
};

NetServer::NetServer(serve::ServingEngine& engine, NetServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  scratch_base_ = options_.snapshot_scratch_path.empty()
                      ? "/tmp/duet_net_" + std::to_string(::getpid()) + ".artifact"
                      : options_.snapshot_scratch_path;
}

NetServer::~NetServer() { Stop(); }

void NetServer::AttachSnapshotSource(serve::ModelRegistry* registry) {
  snapshot_source_.store(registry);
}

WireStatus NetServer::Start() {
  if (started_) return WireStatus::Fail("server already started");
  stopping_ = false;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return WireStatus::Fail(ErrnoString("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return WireStatus::Fail("invalid host address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    WireStatus st = WireStatus::Fail(ErrnoString("bind/listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  const int num_loops = options_.num_loops > 0 ? options_.num_loops : 1;
  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->event_fd < 0) {
      WireStatus st = WireStatus::Fail(ErrnoString("epoll/eventfd"));
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->event_fd >= 0) ::close(loop->event_fd);
      for (auto& l : loops_) {
        ::close(l->epoll_fd);
        ::close(l->event_fd);
      }
      loops_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeupId;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
    if (i == 0) {
      ev.data.u64 = kListenerId;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
    }
    loops_.push_back(std::move(loop));
  }

  started_ = true;
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { LoopMain(raw); });
  }
  return WireStatus::Ok();
}

void NetServer::Stop() {
  if (!started_.exchange(false)) return;
  stopping_ = true;
  for (auto& loop : loops_) loop->Wake();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Sockets accepted but never adopted by their loop.
  for (auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->inbox_mu);
    for (int fd : loop->adopted_fds) ::close(fd);
    loop->adopted_fds.clear();
  }
  // Every submitted query's callback runs exactly once; wait for all of
  // them so no callback can touch this server after it is torn down.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return global_inflight_.load() == 0; });
  }
  for (auto& loop : loops_) {
    ::close(loop->epoll_fd);
    ::close(loop->event_fd);
  }
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

NetStats NetServer::stats() const {
  NetStats total;
  LatencyHistogram estimate, snapshot;
  for (const auto& loop : loops_) {
    std::lock_guard<std::mutex> lock(loop->stats_mu);
    const NetStats& s = loop->stats;
    total.connections_accepted += s.connections_accepted;
    total.connections_closed += s.connections_closed;
    total.connections_dropped += s.connections_dropped;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.frames_in += s.frames_in;
    total.frames_out += s.frames_out;
    total.batched_frames += s.batched_frames;
    total.queries += s.queries;
    total.sheds += s.sheds;
    total.protocol_errors += s.protocol_errors;
    total.snapshot_streams += s.snapshot_streams;
    total.snapshot_stream_failures += s.snapshot_stream_failures;
    total.snapshot_bytes_sent += s.snapshot_bytes_sent;
    total.estimate.requests += s.estimate.requests;
    total.snapshot.requests += s.snapshot.requests;
    estimate.MergeFrom(loop->estimate_hist);
    snapshot.MergeFrom(loop->snapshot_hist);
  }
  total.inflight = global_inflight_.load();
  total.inflight_high_water = inflight_high_water_.load();
  total.estimate.p50_us = estimate.Quantile(0.5);
  total.estimate.p99_us = estimate.Quantile(0.99);
  total.estimate.p999_us = estimate.Quantile(0.999);
  total.snapshot.p50_us = snapshot.Quantile(0.5);
  total.snapshot.p99_us = snapshot.Quantile(0.99);
  total.snapshot.p999_us = snapshot.Quantile(0.999);
  return total;
}

void NetServer::LoopMain(Loop* loop) {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop->epoll_fd, events, 64, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        AcceptReady(*loop);
        continue;
      }
      if (id == kWakeupId) {
        uint64_t drained = 0;
        while (::read(loop->event_fd, &drained, sizeof drained) > 0) {
        }
        continue;  // inbox is drained below, after the event batch
      }
      auto it = loop->conns.find(id);
      if (it == loop->conns.end()) continue;
      Connection& conn = *it->second;
      bool alive = true;
      bool dropped = false;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) alive = false;
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = FlushWrites(*loop, conn, &dropped);
      }
      if (alive && (events[i].events & EPOLLIN)) {
        alive = HandleReadable(*loop, conn, &dropped);
      }
      if (alive && (events[i].events & EPOLLRDHUP)) alive = false;
      if (!alive) CloseConnection(*loop, id, dropped);
    }

    // Drain the inbox: completed responses first (they free in-flight
    // budget), then adopted sockets.
    std::vector<std::shared_ptr<PendingResponse>> completions;
    std::vector<int> adopted;
    {
      std::lock_guard<std::mutex> lock(loop->inbox_mu);
      completions.swap(loop->completions);
      adopted.swap(loop->adopted_fds);
    }
    for (auto& resp : completions) {
      auto it = loop->conns.find(resp->conn_id);
      if (it == loop->conns.end()) continue;  // connection closed mid-flight
      Connection& conn = *it->second;
      conn.inflight -= static_cast<int64_t>(resp->estimates.size());
      {
        std::lock_guard<std::mutex> lock(loop->stats_mu);
        loop->estimate_hist.Record(MicrosSince(resp->start));
      }
      EstimateResponse response;
      response.estimates = std::move(resp->estimates);
      SendEstimateResponse(*loop, conn, resp->request_id, response);
      bool dropped = false;
      if (!FlushWrites(*loop, conn, &dropped)) CloseConnection(*loop, resp->conn_id, dropped);
    }
    for (int fd : adopted) AdoptConnection(*loop, fd);
  }
  // Loop teardown: close every connection this loop owns. In-flight
  // engine callbacks for them complete harmlessly (the completion finds
  // no connection); Stop() waits for all of them before freeing loops.
  std::vector<uint64_t> ids;
  ids.reserve(loop->conns.size());
  for (const auto& [id, conn] : loop->conns) ids.push_back(id);
  for (uint64_t id : ids) CloseConnection(*loop, id, /*dropped=*/false);
}

void NetServer::AcceptReady(Loop& loop) {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (or a transient accept error): wait for epoll
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    {
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      ++loop.stats.connections_accepted;
    }
    const size_t target = next_loop_.fetch_add(1) % loops_.size();
    if (loops_[target].get() == &loop) {
      AdoptConnection(loop, fd);
    } else {
      Loop& other = *loops_[target];
      {
        std::lock_guard<std::mutex> lock(other.inbox_mu);
        other.adopted_fds.push_back(fd);
      }
      other.Wake();
    }
  }
}

void NetServer::AdoptConnection(Loop& loop, int fd) {
  auto conn = std::make_unique<Connection>();
  conn->id = next_conn_id_.fetch_add(1);
  conn->fd = fd;
  conn->epoll_events = EPOLLIN | EPOLLRDHUP;
  epoll_event ev{};
  ev.events = conn->epoll_events;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  loop.conns.emplace(conn->id, std::move(conn));
}

bool NetServer::HandleReadable(Loop& loop, Connection& conn, bool* dropped) {
  // Bounded read per readiness event: pull at most ~2 max-size frames,
  // then decode. Level-triggered epoll re-arms if the socket still has
  // data, so a pipelining client can never balloon the read ring.
  const size_t read_bound = 2 * options_.max_frame_bytes + kFrameHeaderBytes;
  while (conn.rbuf.size() < read_bound) {
    conn.rbuf.EnsureSpace(16384);
    RingSpan spans[2];
    const int nspans = conn.rbuf.WriteSpans(spans);
    iovec iov[2];
    for (int s = 0; s < nspans; ++s) iov[s] = {spans[s].data, spans[s].len};
    const ssize_t n = ::readv(conn.fd, iov, nspans);
    if (n > 0) {
      conn.rbuf.CommitWrite(static_cast<size_t>(n));
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      loop.stats.bytes_in += static_cast<uint64_t>(n);
      continue;
    }
    if (n == 0) return false;  // clean EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // socket error: close
  }
  if (!ProcessFrames(loop, conn, dropped)) return false;
  return FlushWrites(loop, conn, dropped);
}

bool NetServer::ProcessFrames(Loop& loop, Connection& conn, bool* dropped) {
  char header_bytes[kFrameHeaderBytes];
  while (conn.rbuf.size() >= kFrameHeaderBytes) {
    conn.rbuf.CopyOut(0, kFrameHeaderBytes, header_bytes);
    FrameHeader header;
    WireStatus st = ParseFrameHeader(header_bytes, options_.max_frame_bytes, &header);
    if (!st.ok) {
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      ++loop.stats.protocol_errors;
      *dropped = true;
      return false;
    }
    const size_t frame_bytes = kFrameHeaderBytes + header.payload_len;
    if (conn.rbuf.size() < frame_bytes) return true;  // frame incomplete
    conn.payload.resize(header.payload_len);
    conn.rbuf.CopyOut(kFrameHeaderBytes, header.payload_len, conn.payload.data());
    conn.rbuf.Consume(frame_bytes);
    st = VerifyPayload(header, conn.payload.data(), conn.payload.size());
    if (!st.ok) {
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      ++loop.stats.protocol_errors;
      *dropped = true;
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      ++loop.stats.frames_in;
    }
    FrameResult result = FrameResult::kProtocolError;
    switch (static_cast<FrameType>(header.type)) {
      case FrameType::kEstimateRequest:
        result = HandleEstimateRequest(loop, conn, header);
        break;
      case FrameType::kSnapshotRequest:
        result = HandleSnapshotRequest(loop, conn, header);
        break;
      default:
        // Server-to-client frame types arriving at the server are a
        // protocol violation.
        result = FrameResult::kProtocolError;
        break;
    }
    if (result == FrameResult::kProtocolError) {
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      ++loop.stats.protocol_errors;
    }
    if (result != FrameResult::kOk) {
      *dropped = true;
      return false;
    }
  }
  return true;
}

NetServer::FrameResult NetServer::HandleEstimateRequest(Loop& loop, Connection& conn,
                                                        const FrameHeader& header) {
  EstimateRequest& req = conn.request;
  WireStatus st =
      DecodeEstimateRequest(conn.payload.data(), conn.payload.size(), header.count, &req);
  if (!st.ok) return FrameResult::kProtocolError;

  const int64_t n = static_cast<int64_t>(req.queries.size());
  {
    std::lock_guard<std::mutex> lock(loop.stats_mu);
    ++loop.stats.estimate.requests;
    loop.stats.queries += static_cast<uint64_t>(n);
    if (n >= 2) ++loop.stats.batched_frames;
  }

  // Key routing: a zoo-backed server needs a model key, a fixed/registry
  // server must not get one. Mismatch is an application error, not a
  // protocol error — answer cleanly and keep the connection.
  const bool keyed = engine_.keyed();
  if (keyed && req.model_key.empty()) {
    SendError(loop, conn, header.request_id, "model key required (server is in zoo mode)");
    return FrameResult::kOk;
  }
  if (!keyed && !req.model_key.empty()) {
    SendError(loop, conn, header.request_id,
              "unexpected model key '" + req.model_key + "' (server is not in zoo mode)");
    return FrameResult::kOk;
  }

  const Clock::time_point start = Clock::now();
  if (n == 0) {
    EstimateResponse empty;
    {
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      loop.estimate_hist.Record(MicrosSince(start));
    }
    SendEstimateResponse(loop, conn, header.request_id, empty);
    return FrameResult::kOk;
  }

  // Admission: a frame that would blow either in-flight budget is shed
  // whole through the engine's fallback path — bounded buffering, flagged
  // degradation, never a queue that grows without limit.
  if (conn.inflight + n > options_.max_connection_inflight ||
      global_inflight_.load() + n > options_.max_global_inflight) {
    EstimateResponse shed;
    shed.estimates = engine_.ShedBatch(req.queries);
    {
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      loop.stats.sheds += static_cast<uint64_t>(n);
      loop.estimate_hist.Record(MicrosSince(start));
    }
    SendEstimateResponse(loop, conn, header.request_id, shed);
    return FrameResult::kOk;
  }

  auto resp = std::make_shared<PendingResponse>();
  resp->loop = &loop;
  resp->conn_id = conn.id;
  resp->request_id = header.request_id;
  resp->start = start;
  resp->estimates.resize(static_cast<size_t>(n));
  resp->remaining.store(n);
  conn.inflight += n;
  const int64_t inflight_now = global_inflight_.fetch_add(n) + n;
  int64_t high = inflight_high_water_.load();
  while (inflight_now > high &&
         !inflight_high_water_.compare_exchange_weak(high, inflight_now)) {
  }

  // One SubmitWithCallback per query: the micro-batching scheduler fuses
  // this frame's queries — and every other connection's — into shared
  // GEMM dispatches. The last callback posts the response to our loop.
  const int64_t deadline_us = static_cast<int64_t>(req.deadline_us);
  for (int64_t i = 0; i < n; ++i) {
    auto done = [this, resp, i](const serve::Estimate& e) {
      resp->estimates[static_cast<size_t>(i)] = e;
      if (resp->remaining.fetch_sub(1) == 1) PostCompletion(resp);
    };
    if (keyed) {
      engine_.SubmitWithCallback(req.model_key, req.queries[static_cast<size_t>(i)],
                                 deadline_us, std::move(done));
    } else {
      engine_.SubmitWithCallback(req.queries[static_cast<size_t>(i)], deadline_us,
                                 std::move(done));
    }
  }
  return FrameResult::kOk;
}

NetServer::FrameResult NetServer::HandleSnapshotRequest(Loop& loop, Connection& conn,
                                                        const FrameHeader& header) {
  {
    std::lock_guard<std::mutex> lock(loop.stats_mu);
    ++loop.stats.snapshot.requests;
  }
  serve::ModelRegistry* registry = snapshot_source_.load();
  if (registry == nullptr) {
    SendError(loop, conn, header.request_id, "no snapshot source attached");
    return FrameResult::kOk;
  }
  if (conn.snap_active) {
    SendError(loop, conn, header.request_id, "snapshot stream already in progress");
    return FrameResult::kOk;
  }

  const Clock::time_point start = Clock::now();
  const std::string scratch = scratch_base_ + "." + std::to_string(conn.id);
  artifact::ArtifactStatus saved = registry->SaveCurrentArtifact(scratch);
  if (!saved.ok) {
    SendError(loop, conn, header.request_id, "snapshot serialization failed: " + saved.error);
    return FrameResult::kOk;
  }
  {
    std::ifstream in(scratch, std::ios::binary);
    conn.snap_bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    const bool read_ok = static_cast<bool>(in) || in.eof();
    std::remove(scratch.c_str());
    if (!read_ok || conn.snap_bytes.empty()) {
      conn.snap_bytes.clear();
      SendError(loop, conn, header.request_id, "snapshot scratch read failed");
      return FrameResult::kOk;
    }
  }

  conn.snap_active = true;
  conn.snap_request_id = header.request_id;
  conn.snap_offset = 0;
  conn.snap_chunk = 0;
  conn.snap_start = start;

  // Begin frame: total bytes + the snapshot id being shipped.
  loop.payload_scratch.clear();
  AppendU64(&loop.payload_scratch, conn.snap_bytes.size());
  AppendU64(&loop.payload_scratch, registry->stats().current_id);
  loop.frame_scratch.clear();
  AppendFrame(&loop.frame_scratch, FrameType::kSnapshotBegin, header.request_id, 0,
              loop.payload_scratch.data(), loop.payload_scratch.size());
  conn.wbuf.Append(loop.frame_scratch.data(), loop.frame_scratch.size());
  {
    std::lock_guard<std::mutex> lock(loop.stats_mu);
    ++loop.stats.frames_out;
  }
  return PumpSnapshot(loop, conn) ? FrameResult::kOk : FrameResult::kAbort;
}

bool NetServer::PumpSnapshot(Loop& loop, Connection& conn) {
  if (!conn.snap_active) return true;
  // Stream only while the write ring has room: a slow replica's TCP window
  // throttles the pump instead of growing the primary's memory.
  while (conn.wbuf.size() < options_.write_high_water) {
    if (serve::FaultInjector::ShouldFail(serve::FaultPoint::kNetSnapshotStream)) {
      // Torn transfer: abort the connection mid-stream. The replica sees a
      // truncated stream, rejects it, and keeps serving its old snapshot.
      conn.snap_active = false;
      conn.snap_bytes.clear();
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      ++loop.stats.snapshot_stream_failures;
      return false;
    }
    const uint64_t total = conn.snap_bytes.size();
    const uint64_t remaining = total - conn.snap_offset;
    if (remaining == 0) {
      loop.payload_scratch.clear();
      AppendU64(&loop.payload_scratch, Fnv1a64(conn.snap_bytes.data(), total));
      loop.frame_scratch.clear();
      AppendFrame(&loop.frame_scratch, FrameType::kSnapshotEnd, conn.snap_request_id,
                  conn.snap_chunk, loop.payload_scratch.data(), loop.payload_scratch.size());
      conn.wbuf.Append(loop.frame_scratch.data(), loop.frame_scratch.size());
      conn.snap_active = false;
      conn.snap_bytes.clear();
      conn.snap_bytes.shrink_to_fit();
      std::lock_guard<std::mutex> lock(loop.stats_mu);
      ++loop.stats.frames_out;
      ++loop.stats.snapshot_streams;
      loop.stats.snapshot_bytes_sent += total;
      loop.snapshot_hist.Record(MicrosSince(conn.snap_start));
      return true;
    }
    const uint64_t len = std::min<uint64_t>(options_.snapshot_chunk_bytes, remaining);
    loop.frame_scratch.clear();
    AppendFrame(&loop.frame_scratch, FrameType::kSnapshotChunk, conn.snap_request_id,
                conn.snap_chunk++, conn.snap_bytes.data() + conn.snap_offset, len);
    conn.wbuf.Append(loop.frame_scratch.data(), loop.frame_scratch.size());
    conn.snap_offset += len;
    std::lock_guard<std::mutex> lock(loop.stats_mu);
    ++loop.stats.frames_out;
  }
  return true;
}

void NetServer::SendError(Loop& loop, Connection& conn, uint64_t request_id,
                          const std::string& message) {
  loop.frame_scratch.clear();
  AppendFrame(&loop.frame_scratch, FrameType::kError, request_id, 0, message.data(),
              message.size());
  conn.wbuf.Append(loop.frame_scratch.data(), loop.frame_scratch.size());
  std::lock_guard<std::mutex> lock(loop.stats_mu);
  ++loop.stats.frames_out;
}

void NetServer::SendEstimateResponse(Loop& loop, Connection& conn, uint64_t request_id,
                                     const EstimateResponse& response) {
  loop.payload_scratch.clear();
  EncodeEstimateResponse(response, &loop.payload_scratch);
  loop.frame_scratch.clear();
  AppendFrame(&loop.frame_scratch, FrameType::kEstimateResponse, request_id,
              static_cast<uint32_t>(response.estimates.size()), loop.payload_scratch.data(),
              loop.payload_scratch.size());
  conn.wbuf.Append(loop.frame_scratch.data(), loop.frame_scratch.size());
  std::lock_guard<std::mutex> lock(loop.stats_mu);
  ++loop.stats.frames_out;
}

bool NetServer::FlushWrites(Loop& loop, Connection& conn, bool* dropped) {
  while (true) {
    while (!conn.wbuf.empty()) {
      RingSpan spans[2];
      const int nspans = conn.wbuf.ReadSpans(spans);
      iovec iov[2];
      for (int s = 0; s < nspans; ++s) iov[s] = {spans[s].data, spans[s].len};
      const ssize_t n = ::writev(conn.fd, iov, nspans);
      if (n > 0) {
        conn.wbuf.Consume(static_cast<size_t>(n));
        std::lock_guard<std::mutex> lock(loop.stats_mu);
        loop.stats.bytes_out += static_cast<uint64_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;  // peer vanished mid-write
    }
    // The ring drained below high water: stream more snapshot chunks.
    if (conn.snap_active && conn.wbuf.size() < options_.write_high_water) {
      if (!PumpSnapshot(loop, conn)) {
        *dropped = true;
        return false;
      }
      if (!conn.wbuf.empty()) continue;  // try to push the new chunks out
    }
    break;
  }
  UpdateEpoll(loop, conn);
  return true;
}

void NetServer::UpdateEpoll(Loop& loop, Connection& conn) {
  uint32_t want = EPOLLRDHUP;
  // Backpressure: above high water we stop reading this socket entirely;
  // the client's sends stall on its TCP window until we drain.
  if (conn.wbuf.size() <= options_.write_high_water) want |= EPOLLIN;
  if (!conn.wbuf.empty()) want |= EPOLLOUT;
  if (want == conn.epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.epoll_events = want;
  }
}

void NetServer::CloseConnection(Loop& loop, uint64_t conn_id, bool dropped) {
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  Connection& conn = *it->second;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  {
    std::lock_guard<std::mutex> lock(loop.stats_mu);
    if (dropped) {
      ++loop.stats.connections_dropped;
    } else {
      ++loop.stats.connections_closed;
    }
  }
  // In-flight queries for this connection still complete in the engine;
  // their completions find no connection and are discarded (the global
  // budget is released by PostCompletion either way).
  loop.conns.erase(it);
}

void NetServer::PostCompletion(std::shared_ptr<PendingResponse> response) {
  Loop* loop = response->loop;
  const int64_t n = static_cast<int64_t>(response->estimates.size());
  {
    std::lock_guard<std::mutex> lock(loop->inbox_mu);
    loop->completions.push_back(std::move(response));
  }
  loop->Wake();
  // Release the global budget only after the completion is visible in the
  // inbox, and do it under drain_mu_ with the notify inside the critical
  // section: once Stop()'s waiter observes zero in flight (also under
  // drain_mu_), every callback has fully exited this function, so tearing
  // the server down afterwards is safe.
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    global_inflight_.fetch_sub(n);
    drain_cv_.notify_all();
  }
}

}  // namespace duet::net
