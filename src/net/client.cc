#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "artifact/artifact.h"
#include "common/serialize.h"
#include "serve/model_zoo.h"

namespace duet::net {

namespace {

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

RpcClient::~RpcClient() { Close(); }

WireStatus RpcClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return WireStatus::Fail(ErrnoString("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return WireStatus::Fail("invalid host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    WireStatus st = WireStatus::Fail(ErrnoString("connect"));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return WireStatus::Ok();
}

void RpcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WireStatus RpcClient::WriteAll(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd_, p + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return WireStatus::Fail(ErrnoString("send"));
  }
  return WireStatus::Ok();
}

WireStatus RpcClient::ReadExact(void* dst, size_t len) {
  char* p = static_cast<char*>(dst);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd_, p + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return WireStatus::Fail("connection closed by server");
    if (errno == EINTR) continue;
    return WireStatus::Fail(ErrnoString("recv"));
  }
  return WireStatus::Ok();
}

WireStatus RpcClient::ReadFrame(FrameHeader* header, std::string* payload) {
  char header_bytes[kFrameHeaderBytes];
  WireStatus st = ReadExact(header_bytes, kFrameHeaderBytes);
  if (!st.ok) return st;
  // The client accepts frames up to the snapshot-stream chunk bound plus
  // slack; response frames are far smaller than this.
  st = ParseFrameHeader(header_bytes, 8u << 20, header);
  if (!st.ok) return st;
  payload->resize(header->payload_len);
  if (header->payload_len > 0) {
    st = ReadExact(payload->data(), header->payload_len);
    if (!st.ok) return st;
  }
  return VerifyPayload(*header, payload->data(), payload->size());
}

WireStatus RpcClient::EstimateBatch(const std::string& model_key,
                                    const std::vector<query::Query>& queries,
                                    uint64_t deadline_us, std::vector<serve::Estimate>* out) {
  if (fd_ < 0) return WireStatus::Fail("not connected");
  EstimateRequest request;
  request.model_key = model_key;
  request.deadline_us = deadline_us;
  request.queries = queries;

  payload_buf_.clear();
  EncodeEstimateRequest(request, &payload_buf_);
  send_buf_.clear();
  const uint64_t request_id = next_request_id_++;
  AppendFrame(&send_buf_, FrameType::kEstimateRequest, request_id,
              static_cast<uint32_t>(queries.size()), payload_buf_.data(), payload_buf_.size());
  WireStatus st = WriteAll(send_buf_.data(), send_buf_.size());
  if (!st.ok) return st;

  FrameHeader header;
  st = ReadFrame(&header, &payload_buf_);
  if (!st.ok) return st;
  if (static_cast<FrameType>(header.type) == FrameType::kError) {
    return WireStatus::Fail("server error: " +
                            std::string(payload_buf_.data(), payload_buf_.size()));
  }
  if (static_cast<FrameType>(header.type) != FrameType::kEstimateResponse) {
    return WireStatus::Fail("unexpected frame type " + std::to_string(header.type));
  }
  if (header.request_id != request_id) {
    return WireStatus::Fail("response correlation id mismatch");
  }
  EstimateResponse response;
  st = DecodeEstimateResponse(payload_buf_.data(), payload_buf_.size(), header.count, &response);
  if (!st.ok) return st;
  if (response.estimates.size() != queries.size()) {
    return WireStatus::Fail("response row count mismatch");
  }
  *out = std::move(response.estimates);
  return WireStatus::Ok();
}

WireStatus RpcClient::FetchSnapshot(const std::string& dest_path, uint64_t* snapshot_id,
                                    uint64_t* total_bytes) {
  if (fd_ < 0) return WireStatus::Fail("not connected");
  send_buf_.clear();
  const uint64_t request_id = next_request_id_++;
  AppendFrame(&send_buf_, FrameType::kSnapshotRequest, request_id, 0, nullptr, 0);
  WireStatus st = WriteAll(send_buf_.data(), send_buf_.size());
  if (!st.ok) return st;

  FrameHeader header;
  st = ReadFrame(&header, &payload_buf_);
  if (!st.ok) return st;
  if (static_cast<FrameType>(header.type) == FrameType::kError) {
    return WireStatus::Fail("server error: " +
                            std::string(payload_buf_.data(), payload_buf_.size()));
  }
  if (static_cast<FrameType>(header.type) != FrameType::kSnapshotBegin) {
    return WireStatus::Fail("expected snapshot begin, got frame type " +
                            std::to_string(header.type));
  }
  uint64_t expected_bytes = 0, shipped_id = 0;
  {
    ByteCursor cursor(payload_buf_.data(), payload_buf_.size());
    if (!cursor.ReadU64(&expected_bytes) || !cursor.ReadU64(&shipped_id)) {
      return WireStatus::Fail("malformed snapshot begin frame");
    }
  }

  std::string data;
  data.reserve(expected_bytes);
  uint32_t next_chunk = 0;
  while (true) {
    st = ReadFrame(&header, &payload_buf_);
    if (!st.ok) return st;  // a torn stream lands here (server closed)
    if (static_cast<FrameType>(header.type) == FrameType::kSnapshotChunk) {
      if (header.count != next_chunk) return WireStatus::Fail("snapshot chunk out of order");
      ++next_chunk;
      data.append(payload_buf_);
      if (data.size() > expected_bytes) return WireStatus::Fail("snapshot stream overrun");
      continue;
    }
    if (static_cast<FrameType>(header.type) == FrameType::kSnapshotEnd) break;
    return WireStatus::Fail("unexpected frame type " + std::to_string(header.type) +
                            " inside snapshot stream");
  }
  if (data.size() != expected_bytes) {
    return WireStatus::Fail("snapshot stream truncated: " + std::to_string(data.size()) +
                            " of " + std::to_string(expected_bytes) + " bytes");
  }
  uint64_t stream_checksum = 0;
  {
    ByteCursor cursor(payload_buf_.data(), payload_buf_.size());
    if (!cursor.ReadU64(&stream_checksum)) {
      return WireStatus::Fail("malformed snapshot end frame");
    }
  }
  if (Fnv1a64(data.data(), data.size()) != stream_checksum) {
    return WireStatus::Fail("snapshot stream checksum mismatch");
  }

  std::ofstream out(dest_path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  if (!out) {
    std::remove(dest_path.c_str());
    return WireStatus::Fail("failed writing snapshot to " + dest_path);
  }
  if (snapshot_id != nullptr) *snapshot_id = shipped_id;
  if (total_bytes != nullptr) *total_bytes = expected_bytes;
  return WireStatus::Ok();
}

WireStatus RpcClient::SendRaw(const void* data, size_t len) {
  if (fd_ < 0) return WireStatus::Fail("not connected");
  return WriteAll(data, len);
}

bool RpcClient::WaitForClose() {
  if (fd_ < 0) return true;
  while (true) {
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 5000);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return false;  // timeout/error: server did NOT drop us
    char buf[256];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0 || (n < 0 && errno != EINTR)) {
      Close();
      return true;
    }
    // Data before close would be a protocol surprise for the caller's
    // scenario; keep draining until EOF either way.
  }
}

WireStatus InstallSnapshot(serve::ModelZoo& zoo, const std::string& key,
                           const std::string& fetched_path, const std::string& dest_path) {
  // Full-checksum validation BEFORE the swap: a corrupt file never
  // replaces the artifact the zoo is serving from.
  artifact::ArtifactLoadOptions load_options;
  load_options.verify_checksums = true;
  std::shared_ptr<const artifact::ArtifactModel> model;
  artifact::ArtifactStatus st = artifact::LoadArtifact(fetched_path, load_options, &model);
  if (!st.ok) {
    std::remove(fetched_path.c_str());
    return WireStatus::Fail("fetched snapshot rejected: " + st.error);
  }
  model.reset();  // drop the validation mapping before renaming under it
  if (std::rename(fetched_path.c_str(), dest_path.c_str()) != 0) {
    WireStatus fail = WireStatus::Fail(ErrnoString("rename"));
    std::remove(fetched_path.c_str());
    return fail;
  }
  // Hot swap: re-registering drops the resident copy, so the next acquire
  // maps the new bytes while outstanding pins finish on the old mapping.
  zoo.Register(key, dest_path);
  return WireStatus::Ok();
}

WireStatus ReplicateSnapshot(RpcClient& client, serve::ModelZoo& zoo, const std::string& key,
                             const std::string& dest_path) {
  const std::string fetched = dest_path + ".fetch";
  WireStatus st = client.FetchSnapshot(fetched);
  if (!st.ok) {
    std::remove(fetched.c_str());
    return st;
  }
  return InstallSnapshot(zoo, key, fetched, dest_path);
}

}  // namespace duet::net
