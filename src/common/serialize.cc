#include "common/serialize.h"

#include "common/logging.h"

namespace duet {

uint64_t Fnv1a64(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = kFnv1a64Basis;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fnv1a64Mix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void BinaryWriter::WriteU32(uint32_t v) { out_.write(reinterpret_cast<const char*>(&v), sizeof v); }
void BinaryWriter::WriteU64(uint64_t v) { out_.write(reinterpret_cast<const char*>(&v), sizeof v); }
void BinaryWriter::WriteI64(int64_t v) { out_.write(reinterpret_cast<const char*>(&v), sizeof v); }
void BinaryWriter::WriteF32(float v) { out_.write(reinterpret_cast<const char*>(&v), sizeof v); }
void BinaryWriter::WriteF64(double v) { out_.write(reinterpret_cast<const char*>(&v), sizeof v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteF32Vector(const std::vector<float>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(int64_t)));
}

void BinaryWriter::WriteU32Vector(const std::vector<uint32_t>& v) {
  WriteU64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(uint32_t)));
}

void BinaryReader::ReadRaw(void* dst, size_t n) {
  in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  DUET_CHECK(in_.good()) << "truncated or corrupt binary stream";
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v;
  ReadRaw(&v, sizeof v);
  return v;
}
uint64_t BinaryReader::ReadU64() {
  uint64_t v;
  ReadRaw(&v, sizeof v);
  return v;
}
int64_t BinaryReader::ReadI64() {
  int64_t v;
  ReadRaw(&v, sizeof v);
  return v;
}
float BinaryReader::ReadF32() {
  float v;
  ReadRaw(&v, sizeof v);
  return v;
}
double BinaryReader::ReadF64() {
  double v;
  ReadRaw(&v, sizeof v);
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  std::string s(n, '\0');
  if (n > 0) ReadRaw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadF32Vector() {
  const uint64_t n = ReadU64();
  std::vector<float> v(n);
  if (n > 0) ReadRaw(v.data(), n * sizeof(float));
  return v;
}

std::vector<int64_t> BinaryReader::ReadI64Vector() {
  const uint64_t n = ReadU64();
  std::vector<int64_t> v(n);
  if (n > 0) ReadRaw(v.data(), n * sizeof(int64_t));
  return v;
}

std::vector<uint32_t> BinaryReader::ReadU32Vector() {
  const uint64_t n = ReadU64();
  std::vector<uint32_t> v(n);
  if (n > 0) ReadRaw(v.data(), n * sizeof(uint32_t));
  return v;
}

}  // namespace duet
