#include "common/flags.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace duet {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;  // positional args are ignored
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Flags::GetString(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stoll(it->second);
}

double Flags::GetDouble(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stod(it->second);
}

bool Flags::GetBool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

double Flags::ScaleFactor() {
  const char* env = std::getenv("DUET_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  DUET_CHECK_GT(v, 0.0) << "DUET_BENCH_SCALE must be positive";
  return v;
}

}  // namespace duet
