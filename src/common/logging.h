// Minimal logging / assertion macros used across the library.
//
// CHECK-style macros abort with a readable message; they are always on
// (cardinality estimators guard invariants cheaply relative to model math).
#ifndef DUET_COMMON_LOGGING_H_
#define DUET_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace duet {

namespace internal {

/// Accumulates a fatal message and aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace duet

#define DUET_CHECK(cond)                                              \
  if (!(cond))                                                        \
  ::duet::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define DUET_CHECK_OP(a, b, op) DUET_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define DUET_CHECK_EQ(a, b) DUET_CHECK_OP(a, b, ==)
#define DUET_CHECK_NE(a, b) DUET_CHECK_OP(a, b, !=)
#define DUET_CHECK_LT(a, b) DUET_CHECK_OP(a, b, <)
#define DUET_CHECK_LE(a, b) DUET_CHECK_OP(a, b, <=)
#define DUET_CHECK_GT(a, b) DUET_CHECK_OP(a, b, >)
#define DUET_CHECK_GE(a, b) DUET_CHECK_OP(a, b, >=)

#endif  // DUET_COMMON_LOGGING_H_
