#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/logging.h"

namespace duet {

namespace {
// Nested ParallelFor calls from inside a worker run serially; the global
// pool's Wait() tracks all in-flight tasks, so re-entering it from a worker
// would deadlock.
thread_local bool t_inside_worker = false;
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DUET_CHECK(!stop_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    t_inside_worker = true;
    try {
      task();
    } catch (...) {
      // A raw Submit task let an exception escape. Unwinding further would
      // reach the thread entry point and terminate the process; swallow it
      // here so the worker — and the in-flight accounting below — survive.
      escaped_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    t_inside_worker = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

namespace {
/// Global pool slot; intentionally leaked (workers outlive static dtors).
ThreadPool*& GlobalSlot() {
  static ThreadPool* pool = nullptr;
  return pool;
}
}  // namespace

ThreadPool& ThreadPool::Global() {
  ThreadPool*& slot = GlobalSlot();
  if (slot == nullptr) slot = new ThreadPool();
  return *slot;
}

void ThreadPool::SetGlobalThreads(unsigned num_threads) {
  ThreadPool*& slot = GlobalSlot();
  delete slot;  // joins the old workers
  slot = new ThreadPool(num_threads);
}

void ParallelFor(int64_t begin, int64_t end, const std::function<void(int64_t)>& fn,
                 bool parallel, int64_t grain) {
  ParallelForChunked(
      begin, end,
      [&fn](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      },
      parallel, grain);
}

void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn, bool parallel,
                        int64_t grain) {
  if (begin >= end) return;
  const int64_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  const int64_t max_chunks = static_cast<int64_t>(pool.num_threads()) * 4;
  // A single-worker pool cannot overlap anything with the caller; chunking
  // through it only buys context switches.
  if (!parallel || t_inside_worker || n <= grain || max_chunks <= 1 ||
      pool.num_threads() <= 1) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = std::max<int64_t>((n + max_chunks - 1) / max_chunks, grain);
  // First exception thrown by any chunk, rethrown on the calling thread
  // after the batch drains so callers see the same behavior as the serial
  // path (and no exception ever reaches a worker's thread entry point).
  std::mutex error_mu;
  std::exception_ptr first_error;
  for (int64_t lo = begin; lo < end; lo += chunk) {
    const int64_t hi = std::min(lo + chunk, end);
    pool.Submit([&fn, &error_mu, &first_error, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.Wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace duet
