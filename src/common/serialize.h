// Tiny binary (de)serialization layer used for model checkpoints and
// dataset caching. Little-endian, length-prefixed, with a magic header and
// format version so stale checkpoints fail loudly instead of silently.
#ifndef DUET_COMMON_SERIALIZE_H_
#define DUET_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace duet {

/// 64-bit FNV-1a offset basis. The checkpoint (core/checkpoint.cc) and
/// snapshot-artifact (artifact/format.h) formats both seal their payloads
/// with this hash family, so it lives with the serialization layer.
constexpr uint64_t kFnv1a64Basis = 0xcbf29ce484222325ULL;

/// FNV-1a over a byte range.
uint64_t Fnv1a64(const void* data, size_t n);

/// Mixes the 8 little-endian bytes of `v` into a running FNV-1a state `h`
/// (start from kFnv1a64Basis). Used for hashing structured values such as
/// parameter shapes.
uint64_t Fnv1a64Mix(uint64_t h, uint64_t v);

/// Bounds-checked reader over an in-memory buffer. BinaryReader aborts on a
/// short stream, which is exactly what the non-aborting loaders
/// (core::TryLoadModuleFile, artifact::LoadArtifact) must not do, so
/// untrusted headers are parsed through this cursor instead: every read
/// reports failure and leaves the cursor usable.
class ByteCursor {
 public:
  ByteCursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof *v); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof *v); }
  bool ReadI64(int64_t* v) { return ReadRaw(v, sizeof *v); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof *v); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof *v); }

  bool ReadString(std::string* s) {
    uint64_t n = 0;
    if (!ReadU64(&n)) return false;
    if (n > Remaining()) return false;
    s->assign(data_ + off_, static_cast<size_t>(n));
    off_ += static_cast<size_t>(n);
    return true;
  }

  bool Skip(size_t n) {
    if (n > Remaining()) return false;
    off_ += n;
    return true;
  }

  size_t Remaining() const { return size_ - off_; }
  size_t Offset() const { return off_; }
  const char* Here() const { return data_ + off_; }

 private:
  bool ReadRaw(void* dst, size_t n) {
    if (n > Remaining()) return false;
    std::memcpy(dst, data_ + off_, n);
    off_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t off_ = 0;
};

/// Streaming binary writer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteF32Vector(const std::vector<float>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);

 private:
  std::ostream& out_;
};

/// Streaming binary reader; every method DUET_CHECKs stream health.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadF32Vector();
  std::vector<int64_t> ReadI64Vector();
  std::vector<uint32_t> ReadU32Vector();

 private:
  void ReadRaw(void* dst, size_t n);
  std::istream& in_;
};

}  // namespace duet

#endif  // DUET_COMMON_SERIALIZE_H_
