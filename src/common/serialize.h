// Tiny binary (de)serialization layer used for model checkpoints and
// dataset caching. Little-endian, length-prefixed, with a magic header and
// format version so stale checkpoints fail loudly instead of silently.
#ifndef DUET_COMMON_SERIALIZE_H_
#define DUET_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace duet {

/// Streaming binary writer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteF32Vector(const std::vector<float>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);

 private:
  std::ostream& out_;
};

/// Streaming binary reader; every method DUET_CHECKs stream health.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadF32Vector();
  std::vector<int64_t> ReadI64Vector();
  std::vector<uint32_t> ReadU32Vector();

 private:
  void ReadRaw(void* dst, size_t n);
  std::istream& in_;
};

}  // namespace duet

#endif  // DUET_COMMON_SERIALIZE_H_
