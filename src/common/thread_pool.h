// A small fixed-size thread pool plus a blocking ParallelFor helper.
//
// The paper parallelizes Algorithm 1 (virtual-tuple sampling) per column and
// the MPSN encoders per column with "multi-threading to avoid the Python GIL
// limitation"; this pool is the C++ substrate for those paths and for
// batch-parallel inference (the stand-in for GPU batching, see DESIGN.md).
#ifndef DUET_COMMON_THREAD_POOL_H_
#define DUET_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace duet {

/// Fixed-size worker pool. Tasks are std::function<void()>; Wait() blocks
/// until all submitted tasks have drained.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means std::thread::hardware_concurrency).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. If the task lets an exception escape, the pool
  /// swallows it (the worker survives and in-flight accounting still runs)
  /// and bumps escaped_exceptions(); batch helpers that need the error —
  /// ParallelFor/ParallelForChunked — catch inside the task and rethrow on
  /// the calling thread instead, so raw Submit is the only path that can
  /// reach this backstop.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Cumulative count of exceptions that escaped raw Submit tasks and were
  /// swallowed by the worker backstop. Before this counter, such an
  /// exception unwound the worker thread and terminated the process.
  uint64_t escaped_exceptions() const {
    return escaped_exceptions_.load(std::memory_order_relaxed);
  }

  /// Process-wide pool (lazily constructed, hardware concurrency).
  static ThreadPool& Global();

  /// Replaces the global pool with one of `num_threads` workers (0 =
  /// hardware concurrency). Must only be called while no parallel work is in
  /// flight; existing workers are joined first. Used by the thread-scaling
  /// ablation bench.
  static void SetGlobalThreads(unsigned num_threads);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  uint64_t in_flight_ = 0;
  bool stop_ = false;
  std::atomic<uint64_t> escaped_exceptions_{0};
};

/// Runs fn(i) for i in [begin, end) across the pool, splitting the range into
/// contiguous chunks. Falls back to a serial loop for tiny ranges or when
/// `parallel` is false (useful to measure single-thread costs).
///
/// Exception contract: if fn throws on any chunk, the first exception is
/// captured, the batch still drains (remaining chunks may or may not run),
/// and the exception is rethrown on the calling thread — identical to the
/// serial path, and never fatal to a pool worker.
void ParallelFor(int64_t begin, int64_t end, const std::function<void(int64_t)>& fn,
                 bool parallel = true, int64_t grain = 1024);

/// Chunked variant: fn(chunk_begin, chunk_end) per contiguous chunk. This is
/// the workhorse for vectorized column kernels. Same exception contract as
/// ParallelFor.
void ParallelForChunked(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& fn,
                        bool parallel = true, int64_t grain = 1024);

}  // namespace duet

#endif  // DUET_COMMON_THREAD_POOL_H_
