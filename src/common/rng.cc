#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace duet {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  DUET_CHECK_GT(n, 0u);
  // Lemire's nearly-divisionless rejection method.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  DUET_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

float Rng::UniformFloat() { return static_cast<float>((*this)() >> 40) * 0x1.0p-24f; }

double Rng::Gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::Gamma(double shape, double scale) {
  DUET_CHECK_GT(shape, 0.0);
  DUET_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct with a power of a uniform variate.
    const double u = std::max(UniformDouble(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(UniformInt(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Split() { return Rng((*this)()); }

ZipfDistribution::ZipfDistribution(uint32_t n, double s) {
  DUET_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

uint32_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint32_t rank) const {
  DUET_CHECK_LT(rank, cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace duet
