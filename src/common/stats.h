// Summary statistics over error distributions (the paper reports
// mean / median / 75th / 99th / max Q-error, Table II).
#ifndef DUET_COMMON_STATS_H_
#define DUET_COMMON_STATS_H_

#include <string>
#include <vector>

namespace duet {

/// Percentile with linear interpolation; q in [0, 100]. Sorts a copy.
double Percentile(std::vector<double> values, double q);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// The five-number summary the paper's Table II reports per workload.
struct ErrorSummary {
  double mean = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// Computes the summary from raw q-errors.
  static ErrorSummary FromValues(const std::vector<double>& values);

  /// "mean median p75 p99 max" with fixed formatting for bench tables.
  std::string ToString() const;
};

}  // namespace duet

#endif  // DUET_COMMON_STATS_H_
