// Wall-clock timing helpers for the benchmark harnesses.
#ifndef DUET_COMMON_TIMER_H_
#define DUET_COMMON_TIMER_H_

#include <chrono>

namespace duet {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across repeated Start/Stop sections (used to split
/// estimation latency into encode / forward / mask phases for Fig. 6).
class AccumTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_ += timer_.Seconds(); }
  void Clear() { total_ = 0.0; }
  double Seconds() const { return total_; }
  double Millis() const { return total_ * 1e3; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace duet

#endif  // DUET_COMMON_TIMER_H_
