// Deterministic pseudo-random number generation and the distributions the
// reproduction needs (uniform, normal, gamma, zipf).
//
// Everything in the repository that involves randomness takes an explicit
// seed so that datasets, workloads, model initialization and training runs
// are bit-reproducible. The engine is xoshiro256++ seeded via SplitMix64,
// which is fast, high quality, and trivially portable.
#ifndef DUET_COMMON_RNG_H_
#define DUET_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace duet {

/// xoshiro256++ PRNG with SplitMix64 seeding.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions where convenient, but the member samplers
/// below are preferred for cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit value.
  uint64_t operator()();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [0, 1).
  float UniformFloat();

  /// Standard normal via Box-Muller (cached spare value).
  double Gaussian();

  /// Gamma(shape k, scale theta) via Marsaglia-Tsang; used by the workload
  /// generator to skew the number of predicates per query (paper Sec. V-A2).
  double Gamma(double shape, double scale);

  /// Bernoulli with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Derive an independent child generator (for per-thread streams).
  Rng Split();

 private:
  uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Zipf(1..n, s) sampler with precomputed CDF; used by the synthetic data
/// generators to produce the skewed marginals the paper's datasets exhibit.
class ZipfDistribution {
 public:
  /// Builds a sampler over ranks {0, ..., n-1} with exponent `s` >= 0.
  /// s == 0 degenerates to uniform.
  ZipfDistribution(uint32_t n, double s);

  /// Draws one rank (0-based; rank 0 is the most frequent).
  uint32_t Sample(Rng& rng) const;

  /// Probability mass of a rank.
  double Pmf(uint32_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace duet

#endif  // DUET_COMMON_RNG_H_
