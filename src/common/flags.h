// A tiny --key=value command-line flag parser for benches and examples.
// Unknown flags are rejected so typos in experiment scripts fail fast.
#ifndef DUET_COMMON_FLAGS_H_
#define DUET_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace duet {

/// Parses "--key=value" / "--flag" arguments and serves typed lookups with
/// defaults. Also honors `DUET_BENCH_SCALE` via ScaleFactor() so the whole
/// bench suite can be grown or shrunk with one environment variable.
class Flags {
 public:
  Flags(int argc, char** argv);

  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;
  bool Has(const std::string& key) const;

  /// Multiplier from env DUET_BENCH_SCALE (default 1.0).
  static double ScaleFactor();

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace duet

#endif  // DUET_COMMON_FLAGS_H_
