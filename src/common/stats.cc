#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace duet {

double Percentile(std::vector<double> values, double q) {
  DUET_CHECK(!values.empty());
  DUET_CHECK_GE(q, 0.0);
  DUET_CHECK_LE(q, 100.0);
  std::sort(values.begin(), values.end());
  const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

ErrorSummary ErrorSummary::FromValues(const std::vector<double>& values) {
  ErrorSummary s;
  if (values.empty()) return s;
  s.mean = duet::Mean(values);
  s.median = Percentile(values, 50.0);
  s.p75 = Percentile(values, 75.0);
  s.p99 = Percentile(values, 99.0);
  s.max = Percentile(values, 100.0);
  return s;
}

std::string ErrorSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%8.3f %8.3f %8.3f %10.3f %10.3f", mean, median, p75, p99,
                max);
  return buf;
}

}  // namespace duet
