#include "optimizer/card_provider.h"

#include <cmath>
#include <map>
#include <utility>

#include "common/logging.h"
#include "net/client.h"

namespace duet::optimizer {

// ---------------------------------------------------------------------------
// JoinKeyStats
// ---------------------------------------------------------------------------

JoinKeyStats::JoinKeyStats(const std::vector<const data::Table*>& tables, int join_col) {
  DUET_CHECK(!tables.empty());
  DUET_CHECK_LE(tables.size(), 16u);  // matches the planner's subset-DP bound
  // Unify key values across tables (value equality, not code equality —
  // dictionaries need not align). std::map keeps the value order
  // deterministic, so sums below are bitwise-reproducible.
  std::map<double, size_t> value_index;
  for (const data::Table* t : tables) {
    DUET_CHECK(t != nullptr);
    DUET_CHECK_GE(join_col, 0);
    DUET_CHECK_LT(join_col, t->num_columns());
    for (double v : t->column(join_col).distinct()) value_index.emplace(v, 0);
  }
  size_t next = 0;
  for (auto& [value, index] : value_index) {
    (void)value;
    index = next++;
  }
  rows_.resize(tables.size(), 0.0);
  counts_.assign(tables.size(), std::vector<double>(value_index.size(), 0.0));
  for (size_t t = 0; t < tables.size(); ++t) {
    const data::Table& table = *tables[t];
    const data::Column& key = table.column(join_col);
    rows_[t] = static_cast<double>(table.num_rows());
    std::vector<double>& counts = counts_[t];
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      counts[value_index.at(key.Value(key.code(r)))] += 1.0;
    }
  }
}

double JoinKeyStats::UnfilteredJoinSize(uint32_t subset) const {
  DUET_CHECK_NE(subset, 0u);
  DUET_CHECK_LT(subset, 1u << num_tables());
  if ((subset & (subset - 1)) == 0) {
    return rows_[static_cast<size_t>(__builtin_ctz(subset))];
  }
  const size_t num_values = counts_.front().size();
  const int k = num_tables();
  double total = 0.0;
  for (size_t v = 0; v < num_values; ++v) {
    double prod = 1.0;
    for (int t = 0; t < k; ++t) {
      if (subset & (1u << t)) prod *= counts_[static_cast<size_t>(t)][v];
    }
    total += prod;
  }
  return total;
}

// ---------------------------------------------------------------------------
// ComposedCardinalityProvider
// ---------------------------------------------------------------------------

/// Per-plan-search state: the selectivity memo (each table's filter is
/// fixed within one star query, so with memoization on, one fetch per table
/// serves every DP level).
class ComposedCardinalityProvider::ComposedSession : public CardinalityProvider::Session {
 public:
  ComposedSession(ComposedCardinalityProvider& provider, const StarJoinQuery& star)
      : provider_(provider),
        star_(star),
        memo_(star.tables.size()) {}

  std::vector<SubsetEstimate> EstimateSubsets(
      const std::vector<uint32_t>& subsets) override {
    const bool memoize = provider_.options_.memoize;
    // Collect this level's selectivity needs FIRST, so the fetch is one
    // burst: memoized, each table at most once per search; unmemoized, one
    // request per (subset, member table) — the raw optimizer fan-out whose
    // same-key bursts the serving engine fuses.
    std::vector<int> fetch;
    for (uint32_t s : subsets) {
      for (int t = 0; t < static_cast<int>(star_.tables.size()); ++t) {
        if (!(s & (1u << t))) continue;
        if (memoize) {
          if (!memo_[static_cast<size_t>(t)].has_value() && !queued_[t]) {
            queued_[t] = true;
            fetch.push_back(t);
          }
        } else {
          fetch.push_back(t);
        }
      }
    }
    std::vector<serve::Estimate> fetched;
    if (!fetch.empty()) fetched = provider_.FetchSelectivities(star_, fetch);
    DUET_CHECK_EQ(fetched.size(), fetch.size());
    if (memoize) {
      for (size_t i = 0; i < fetch.size(); ++i) {
        memo_[static_cast<size_t>(fetch[i])] = fetched[i];
        queued_.erase(fetch[i]);
      }
    }

    // Compose: card(S) = (prod of member selectivities) * exact unfiltered
    // join factor. Members multiply in ascending table order so the result
    // is bitwise-deterministic.
    std::vector<SubsetEstimate> out;
    out.reserve(subsets.size());
    size_t cursor = 0;
    for (uint32_t s : subsets) {
      SubsetEstimate est;
      double sel_prod = 1.0;
      for (int t = 0; t < static_cast<int>(star_.tables.size()); ++t) {
        if (!(s & (1u << t))) continue;
        const serve::Estimate& e =
            memoize ? *memo_[static_cast<size_t>(t)] : fetched[cursor++];
        sel_prod *= query::CardinalityEstimator::ClampSelectivity(e.selectivity);
        est.degraded |= e.degraded();
      }
      est.cardinality = sel_prod * provider_.stats_.UnfilteredJoinSize(s);
      out.push_back(est);
    }
    return out;
  }

 private:
  ComposedCardinalityProvider& provider_;
  const StarJoinQuery& star_;
  std::vector<std::optional<serve::Estimate>> memo_;
  std::map<int, bool> queued_;  // tables already in this level's fetch list
};

std::unique_ptr<CardinalityProvider::Session> ComposedCardinalityProvider::StartPlan(
    const StarJoinQuery& star) {
  DUET_CHECK_EQ(static_cast<int>(star.tables.size()), stats_.num_tables())
      << "star query does not match the tables this provider was built over";
  DUET_CHECK_EQ(star.filters.size(), star.tables.size());
  return std::make_unique<ComposedSession>(*this, star);
}

// ---------------------------------------------------------------------------
// ServingCardinalityProvider
// ---------------------------------------------------------------------------

ServingCardinalityProvider::ServingCardinalityProvider(serve::ServingEngine& engine,
                                                       std::vector<std::string> model_keys,
                                                       JoinKeyStats stats,
                                                       ComposedProviderOptions options)
    : ComposedCardinalityProvider(std::move(stats), options),
      engine_(engine),
      model_keys_(std::move(model_keys)),
      sequential_(options.sequential),
      deadline_us_(options.deadline_us) {
  if (engine_.keyed()) {
    DUET_CHECK_EQ(static_cast<int>(model_keys_.size()), this->stats().num_tables())
        << "zoo-mode serving needs one model key per star table";
  }
}

std::vector<serve::Estimate> ServingCardinalityProvider::FetchSelectivities(
    const StarJoinQuery& star, const std::vector<int>& tables) {
  std::vector<serve::Estimate> out(tables.size());
  if (sequential_) {
    // The A/B arm: the same async serving path, but one request in flight
    // at a time — each waits out batch formation alone, nothing coalesces.
    for (size_t i = 0; i < tables.size(); ++i) {
      const int t = tables[i];
      query::Query q = star.filters[static_cast<size_t>(t)];
      serve::ServingEngine::Future f =
          engine_.keyed()
              ? engine_.Submit(model_keys_[static_cast<size_t>(t)], std::move(q),
                               deadline_us_)
              : engine_.Submit(std::move(q), deadline_us_);
      out[i] = f.Result();
    }
    return out;
  }
  // Submit the whole burst before waiting on anything: concurrent same-key
  // requests land in the micro-batcher together and fuse into one GEMM
  // (ServingOptions::fuse_requests) — the DP-level batching contract.
  std::vector<serve::ServingEngine::Future> futures(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    const int t = tables[i];
    query::Query q = star.filters[static_cast<size_t>(t)];
    futures[i] = engine_.keyed()
                     ? engine_.Submit(model_keys_[static_cast<size_t>(t)], std::move(q),
                                      deadline_us_)
                     : engine_.Submit(std::move(q), deadline_us_);
  }
  for (size_t i = 0; i < tables.size(); ++i) out[i] = futures[i].Result();
  return out;
}

// ---------------------------------------------------------------------------
// RemoteCardinalityProvider
// ---------------------------------------------------------------------------

RemoteCardinalityProvider::RemoteCardinalityProvider(net::RpcClient& client,
                                                     std::vector<std::string> model_keys,
                                                     JoinKeyStats stats,
                                                     ComposedProviderOptions options)
    : ComposedCardinalityProvider(std::move(stats), options),
      client_(client),
      model_keys_(std::move(model_keys)),
      deadline_us_(static_cast<uint64_t>(options.deadline_us)) {
  DUET_CHECK_EQ(static_cast<int>(model_keys_.size()), this->stats().num_tables())
      << "remote planning needs one model key per star table";
}

std::vector<serve::Estimate> RemoteCardinalityProvider::FetchSelectivities(
    const StarJoinQuery& star, const std::vector<int>& tables) {
  std::vector<serve::Estimate> out(tables.size());
  // Group by table so each key is ONE wire frame carrying all of this
  // level's requests for it — wire-level batching the server's
  // micro-batcher then fuses.
  std::map<int, std::vector<size_t>> by_table;
  for (size_t i = 0; i < tables.size(); ++i) by_table[tables[i]].push_back(i);
  for (const auto& [t, indices] : by_table) {
    const std::vector<query::Query> queries(indices.size(),
                                            star.filters[static_cast<size_t>(t)]);
    std::vector<serve::Estimate> resp;
    const net::WireStatus status = client_.EstimateBatch(
        model_keys_[static_cast<size_t>(t)], queries, deadline_us_, &resp);
    if (!status.ok || resp.size() != queries.size()) {
      // A dead connection or server error frame degrades the plan search
      // exactly like a shed request: flagged zero, never a throw.
      for (size_t i : indices) {
        out[i].selectivity = 0.0;
        out[i].fallback = true;
      }
      continue;
    }
    for (size_t j = 0; j < indices.size(); ++j) out[indices[j]] = resp[j];
  }
  return out;
}

// ---------------------------------------------------------------------------
// EstimatorCardinalityProvider
// ---------------------------------------------------------------------------

EstimatorCardinalityProvider::EstimatorCardinalityProvider(
    std::vector<query::CardinalityEstimator*> estimators, JoinKeyStats stats,
    ComposedProviderOptions options, std::string name)
    : ComposedCardinalityProvider(std::move(stats), options),
      estimators_(std::move(estimators)),
      name_(std::move(name)) {
  DUET_CHECK_EQ(static_cast<int>(estimators_.size()), this->stats().num_tables());
  for (query::CardinalityEstimator* e : estimators_) DUET_CHECK(e != nullptr);
}

std::vector<serve::Estimate> EstimatorCardinalityProvider::FetchSelectivities(
    const StarJoinQuery& star, const std::vector<int>& tables) {
  std::vector<serve::Estimate> out(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    const int t = tables[i];
    out[i].selectivity = estimators_[static_cast<size_t>(t)]->EstimateSelectivity(
        star.filters[static_cast<size_t>(t)]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ExactCardinalityProvider
// ---------------------------------------------------------------------------

class ExactCardinalityProvider::ExactSession : public CardinalityProvider::Session {
 public:
  explicit ExactSession(const StarJoinPlanner& exact) : exact_(exact) {}

  std::vector<SubsetEstimate> EstimateSubsets(
      const std::vector<uint32_t>& subsets) override {
    std::vector<SubsetEstimate> out;
    out.reserve(subsets.size());
    for (uint32_t s : subsets) out.push_back({exact_.ExactSubsetCard(s), false});
    return out;
  }

 private:
  const StarJoinPlanner& exact_;
};

std::unique_ptr<CardinalityProvider::Session> ExactCardinalityProvider::StartPlan(
    const StarJoinQuery& star) {
  DUET_CHECK_EQ(static_cast<int>(star.tables.size()), exact_.num_tables());
  for (size_t t = 0; t < star.tables.size(); ++t) {
    DUET_CHECK(star.tables[t] == exact_.query().tables[t])
        << "oracle provider is bound to a different star query";
  }
  return std::make_unique<ExactSession>(exact_);
}

}  // namespace duet::optimizer
