// Cardinality providers: the seam between the join-order DP and the
// estimation stack (docs/optimizer.md §2).
//
// The planner (optimizer/planner.h, JoinOrderPlanner) never calls an
// estimator directly. It asks a CardinalityProvider for the cardinality of
// every table subset it is about to enumerate — one batched request per DP
// level — and the provider decides where those numbers come from:
//
//  * ServingCardinalityProvider answers through a serve::ServingEngine.
//    In zoo mode every table's model is registered under a string key and
//    each DP level becomes one keyed Submit burst, so the optimizer's
//    fan-out lands in the micro-batcher together and same-key requests
//    coalesce into fused GEMMs (ServingOptions::fuse_requests). Degraded
//    answers (shed / expired deadline / fallback / breaker-open) are
//    clamped and *flagged*, never thrown: an unhealthy serving stack
//    degrades the plan search instead of crashing it.
//  * RemoteCardinalityProvider speaks DuetRpc through a net::RpcClient —
//    the same planner runs against a remote primary, one wire frame per
//    (model key, DP level).
//  * EstimatorCardinalityProvider wraps plain per-table
//    query::CardinalityEstimator instances synchronously (the classical
//    baseline row in bench_optimizer_plancost).
//  * ExactCardinalityProvider answers exact subset cardinalities from the
//    planner's own per-key counting — the oracle whose chosen plan is the
//    optimal plan by construction (P-error == 1.0 exactly).
//
// Multi-table composition (docs/optimizer.md §3): the serving stack only
// models single tables, so composed providers turn per-table filter
// selectivities into join cardinalities with an exact join-factor
// correction. JoinKeyStats counts, once per provider, how often each join
// key VALUE occurs in each table; the unfiltered join size of a subset S is
//   J(S) = sum over values v of  prod_{t in S} count_t(v),
// which for two tables is exactly data::EquiJoinSize (the calibration
// property test_join.cc asserts). The composed estimate is then
//   card(S) = (prod_{t in S} sel_t) * J(S),
// i.e. filters are assumed independent of the join key (the only neural
// input) while the key skew itself is exact — on a foreign-key join with no
// filters this is exact, not an estimate.
#ifndef DUET_OPTIMIZER_CARD_PROVIDER_H_
#define DUET_OPTIMIZER_CARD_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "optimizer/planner.h"
#include "serve/serving_engine.h"

namespace duet::net {
class RpcClient;
}  // namespace duet::net

namespace duet::optimizer {

/// One subset-cardinality answer. `degraded` means some contributing
/// selectivity came back flagged (fallback / deadline_expired / shed, or a
/// failed wire call) — the number is usable but not neural-quality.
struct SubsetEstimate {
  double cardinality = 0.0;
  bool degraded = false;
};

/// Async batching seam between the join-order DP and the estimation stack.
/// The planner opens one Session per plan search and calls EstimateSubsets
/// once per DP level with every subset of that size; the provider submits
/// everything it needs BEFORE waiting on anything (the batching contract,
/// docs/optimizer.md §2).
class CardinalityProvider {
 public:
  /// Per-plan-search state (e.g. the per-table selectivity memo).
  class Session {
   public:
    virtual ~Session() = default;
    /// Cardinality of each requested table subset (bitmask over the star
    /// query's table indices), in request order. One call per DP level.
    virtual std::vector<SubsetEstimate> EstimateSubsets(
        const std::vector<uint32_t>& subsets) = 0;
  };

  virtual ~CardinalityProvider() = default;

  /// Opens a plan-search session for `star`. Providers bound to concrete
  /// tables at construction require `star` to reference those same tables.
  virtual std::unique_ptr<Session> StartPlan(const StarJoinQuery& star) = 0;

  /// Display name for bench tables ("oracle", "neural", ...).
  virtual std::string name() const = 0;
};

/// Exact per-value join-key statistics over a fixed set of tables: the
/// join-factor correction composed providers multiply into per-table
/// selectivities. Values are unified ACROSS tables (value equality, not
/// code equality), so it is exact on arbitrary key dictionaries —
/// UnfilteredJoinSize of a two-table subset equals data::EquiJoinSize.
class JoinKeyStats {
 public:
  JoinKeyStats(const std::vector<const data::Table*>& tables, int join_col);

  /// Exact unfiltered join size of the subset (bitmask over table indices):
  /// sum over key values of the product of per-table occurrence counts.
  /// A singleton subset is the table's row count.
  double UnfilteredJoinSize(uint32_t subset) const;

  int num_tables() const { return static_cast<int>(rows_.size()); }
  double rows(int t) const { return rows_[static_cast<size_t>(t)]; }

 private:
  std::vector<double> rows_;                  // per-table row counts
  std::vector<std::vector<double>> counts_;   // [table][value index], value-unified
};

/// Knobs shared by the composed (selectivity * join-factor) providers.
struct ComposedProviderOptions {
  /// Deadline forwarded with every selectivity request (0 = none).
  int64_t deadline_us = 0;
  /// Memoize per-table selectivities across DP levels (each table's filter
  /// is fixed within one plan search, so one request per table answers the
  /// whole search). Off = re-request per (subset, member table): the raw
  /// optimizer fan-out, ell * C(k, ell) requests at level ell — the shape
  /// whose same-key bursts the micro-batcher fuses into GEMMs.
  bool memoize = true;
  /// Issue selectivity requests one at a time — submit, wait, repeat —
  /// instead of one async burst per level, so each request waits out batch
  /// formation alone and nothing coalesces (the sequential A/B arm in
  /// bench_optimizer_plancost; meaningful for ServingCardinalityProvider).
  bool sequential = false;
};

/// Shared base of the providers that compose per-table selectivities with
/// the JoinKeyStats join factor. Subclasses implement one batched
/// selectivity fetch; degradation flags flow through to SubsetEstimate.
class ComposedCardinalityProvider : public CardinalityProvider {
 public:
  std::unique_ptr<Session> StartPlan(const StarJoinQuery& star) override;

  const JoinKeyStats& stats() const { return stats_; }

 protected:
  ComposedCardinalityProvider(JoinKeyStats stats, ComposedProviderOptions options)
      : stats_(std::move(stats)), options_(options) {}

  /// Fetches the filter selectivity of each listed table (indices into
  /// star.tables, possibly repeated) in ONE burst: submit everything, then
  /// wait. Flags are per answer; a failed fetch returns a flagged 0.
  virtual std::vector<serve::Estimate> FetchSelectivities(
      const StarJoinQuery& star, const std::vector<int>& tables) = 0;

 private:
  class ComposedSession;

  JoinKeyStats stats_;
  ComposedProviderOptions options_;
};

/// Serving-stack provider: selectivities come from a serve::ServingEngine.
/// Zoo mode (engine.keyed()): `model_keys[t]` names table t's artifact and
/// each level is one keyed Submit burst. Non-zoo engines (fixed/registry,
/// single-table scenarios) pass empty keys and use the key-less Submit.
class ServingCardinalityProvider : public ComposedCardinalityProvider {
 public:
  ServingCardinalityProvider(serve::ServingEngine& engine,
                             std::vector<std::string> model_keys, JoinKeyStats stats,
                             ComposedProviderOptions options = {});

  std::string name() const override { return "neural"; }

 protected:
  std::vector<serve::Estimate> FetchSelectivities(
      const StarJoinQuery& star, const std::vector<int>& tables) override;

 private:
  serve::ServingEngine& engine_;
  std::vector<std::string> model_keys_;
  bool sequential_ = false;
  int64_t deadline_us_ = 0;
};

/// Remote provider: the same composition, selectivities fetched from a
/// remote primary over DuetRpc (net/client.h). Each level groups its
/// requests by model key into one wire frame per table — the wire-level
/// batching the server's micro-batcher fuses. A failed call (lost
/// connection, server error frame) yields flagged zeros, degrading the
/// plan search like a shed request would.
class RemoteCardinalityProvider : public ComposedCardinalityProvider {
 public:
  RemoteCardinalityProvider(net::RpcClient& client, std::vector<std::string> model_keys,
                            JoinKeyStats stats, ComposedProviderOptions options = {});

  std::string name() const override { return "remote"; }

 protected:
  std::vector<serve::Estimate> FetchSelectivities(
      const StarJoinQuery& star, const std::vector<int>& tables) override;

 private:
  net::RpcClient& client_;
  std::vector<std::string> model_keys_;
  uint64_t deadline_us_ = 0;
};

/// Classical baseline provider: per-table query::CardinalityEstimator
/// instances called synchronously (no serving stack). `estimators[t]`
/// answers table t; all must outlive the provider.
class EstimatorCardinalityProvider : public ComposedCardinalityProvider {
 public:
  EstimatorCardinalityProvider(std::vector<query::CardinalityEstimator*> estimators,
                               JoinKeyStats stats, ComposedProviderOptions options = {},
                               std::string name = "classical");

  std::string name() const override { return name_; }

 protected:
  std::vector<serve::Estimate> FetchSelectivities(
      const StarJoinQuery& star, const std::vector<int>& tables) override;

 private:
  std::vector<query::CardinalityEstimator*> estimators_;
  std::string name_;
};

/// Oracle provider: exact subset cardinalities from a StarJoinPlanner's
/// per-key counting (StarJoinPlanner::ExactSubsetCard). Bitwise-identical
/// numbers to the DP inside OptimalPlan(), so a JoinOrderPlanner driven by
/// this provider chooses a cost-optimal plan by construction — the
/// P-error == 1.0 row. Bound to the planner's star query; the session
/// ignores the star argument.
class ExactCardinalityProvider : public CardinalityProvider {
 public:
  explicit ExactCardinalityProvider(const StarJoinPlanner& exact) : exact_(exact) {}

  std::unique_ptr<Session> StartPlan(const StarJoinQuery& star) override;
  std::string name() const override { return "oracle"; }

 private:
  class ExactSession;
  const StarJoinPlanner& exact_;
};

}  // namespace duet::optimizer

#endif  // DUET_OPTIMIZER_CARD_PROVIDER_H_
