#include "optimizer/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "optimizer/card_provider.h"

namespace duet::optimizer {

// ---------------------------------------------------------------------------
// Access-path selection
// ---------------------------------------------------------------------------

std::string AccessPath::DebugString() const {
  std::ostringstream os;
  if (is_seq_scan()) {
    os << "SeqScan";
  } else {
    os << "IndexScan(col=" << index_col << ")";
  }
  os << " cost=" << estimated_cost;
  return os.str();
}

AccessPathSelector::AccessPathSelector(const data::Table& table,
                                       std::vector<int> indexed_columns, CostModel cost)
    : table_(table), indexed_columns_(std::move(indexed_columns)), cost_(cost) {
  for (int c : indexed_columns_) {
    DUET_CHECK_GE(c, 0);
    DUET_CHECK_LT(c, table.num_columns());
  }
  // One pass over the table builds every column's cumulative code
  // histogram; each TrueColumnSelectivity call is then a prefix-sum
  // difference instead of a row scan.
  cum_counts_.resize(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    const data::Column& column = table.column(c);
    std::vector<int64_t>& cum = cum_counts_[static_cast<size_t>(c)];
    cum.assign(static_cast<size_t>(column.ndv()) + 1, 0);
    for (int64_t row = 0; row < table.num_rows(); ++row) {
      cum[static_cast<size_t>(column.code(row)) + 1]++;
    }
    for (size_t k = 1; k < cum.size(); ++k) cum[k] += cum[k - 1];
  }
}

double AccessPathSelector::IndexCost(double selectivity) const {
  return cost_.index_lookup +
         selectivity * static_cast<double>(table_.num_rows()) * cost_.index_tuple;
}

double AccessPathSelector::SelectivityForRange(int col, const query::CodeRange& r) const {
  if (r.empty() || table_.num_rows() == 0) return 0.0;
  const std::vector<int64_t>& cum = cum_counts_[static_cast<size_t>(col)];
  const int32_t ndv = table_.column(col).ndv();
  const int32_t lo = std::max(r.lo, 0);
  const int32_t hi = std::min(r.hi, ndv);
  if (lo >= hi) return 0.0;
  const int64_t hits = cum[static_cast<size_t>(hi)] - cum[static_cast<size_t>(lo)];
  return static_cast<double>(hits) / static_cast<double>(table_.num_rows());
}

double AccessPathSelector::TrueColumnSelectivity(const query::Query& query, int col) const {
  const std::vector<query::CodeRange> ranges = query.PerColumnRanges(table_);
  return SelectivityForRange(col, ranges[static_cast<size_t>(col)]);
}

AccessPath AccessPathSelector::Choose(const query::Query& query,
                                      query::CardinalityEstimator& estimator) const {
  AccessPath best;
  best.index_col = -1;
  best.estimated_cost = static_cast<double>(table_.num_rows()) * cost_.seq_tuple;
  for (int col : indexed_columns_) {
    // Only an index whose column carries a predicate is useful.
    query::Query sub;
    for (const query::Predicate& p : query.predicates) {
      if (p.col == col) sub.predicates.push_back(p);
    }
    if (sub.predicates.empty()) continue;
    const double sel = estimator.EstimateSelectivity(sub);
    const double cost = IndexCost(sel);
    if (cost < best.estimated_cost) {
      best.index_col = col;
      best.estimated_cost = cost;
    }
  }
  return best;
}

double AccessPathSelector::TrueCost(const query::Query& query, const AccessPath& path) const {
  if (path.is_seq_scan()) {
    return static_cast<double>(table_.num_rows()) * cost_.seq_tuple;
  }
  return IndexCost(TrueColumnSelectivity(query, path.index_col));
}

AccessPath AccessPathSelector::OptimalPath(const query::Query& query) const {
  AccessPath best;
  best.index_col = -1;
  best.estimated_cost = static_cast<double>(table_.num_rows()) * cost_.seq_tuple;
  for (int col : indexed_columns_) {
    bool has_pred = false;
    for (const query::Predicate& p : query.predicates) has_pred |= p.col == col;
    if (!has_pred) continue;
    const double cost = IndexCost(TrueColumnSelectivity(query, col));
    if (cost < best.estimated_cost) {
      best.index_col = col;
      best.estimated_cost = cost;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Star-join ordering
// ---------------------------------------------------------------------------

StarJoinPlanner::StarJoinPlanner(StarJoinQuery query) : query_(std::move(query)) {
  const int k = num_tables();
  DUET_CHECK_GE(k, 2);
  DUET_CHECK_LE(k, 16) << "subset DP is exponential in the table count";
  DUET_CHECK_EQ(query_.filters.size(), query_.tables.size());
  key_domain_ = 0;
  for (const data::Table* t : query_.tables) {
    DUET_CHECK(t != nullptr);
    DUET_CHECK_LT(query_.join_col, t->num_columns());
    key_domain_ = std::max(key_domain_, t->column(query_.join_col).ndv());
  }
  key_counts_.resize(static_cast<size_t>(k));
  true_cards_.resize(static_cast<size_t>(k));
  for (int t = 0; t < k; ++t) {
    key_counts_[static_cast<size_t>(t)] = FilteredKeyCounts(t);
    double total = 0.0;
    for (int64_t c : key_counts_[static_cast<size_t>(t)]) total += static_cast<double>(c);
    true_cards_[static_cast<size_t>(t)] = total;
  }
}

std::vector<int64_t> StarJoinPlanner::FilteredKeyCounts(int t) const {
  const data::Table& table = *query_.tables[static_cast<size_t>(t)];
  const query::Query& filter = query_.filters[static_cast<size_t>(t)];
  const std::vector<query::CodeRange> ranges = filter.PerColumnRanges(table);
  std::vector<int64_t> counts(static_cast<size_t>(key_domain_), 0);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    bool ok = true;
    for (int c = 0; c < table.num_columns() && ok; ++c) {
      const int32_t code = table.code(r, c);
      const query::CodeRange& range = ranges[static_cast<size_t>(c)];
      ok = code >= range.lo && code < range.hi;
    }
    if (ok) counts[static_cast<size_t>(table.code(r, query_.join_col))]++;
  }
  return counts;
}

double StarJoinPlanner::TrueCOut(const std::vector<int>& order) {
  DUET_CHECK_EQ(static_cast<int>(order.size()), num_tables());
  // Running per-key product of the joined prefix.
  std::vector<double> acc(static_cast<size_t>(key_domain_), 1.0);
  const std::vector<int64_t>& first = key_counts_[static_cast<size_t>(order[0])];
  for (int32_t key = 0; key < key_domain_; ++key) {
    acc[static_cast<size_t>(key)] = static_cast<double>(first[static_cast<size_t>(key)]);
  }
  double total = 0.0;
  for (size_t i = 1; i < order.size(); ++i) {
    const std::vector<int64_t>& next = key_counts_[static_cast<size_t>(order[i])];
    double card = 0.0;
    for (int32_t key = 0; key < key_domain_; ++key) {
      acc[static_cast<size_t>(key)] *= static_cast<double>(next[static_cast<size_t>(key)]);
      card += acc[static_cast<size_t>(key)];
    }
    total += card;
  }
  return total;
}

namespace {

/// The shared System-R left-deep DP: cost(S) = subset_card[S] + min over
/// last-joined t of cost(S \ t), singletons free (C_out counts intermediate
/// results only). Every planner entry point funnels here so tie-breaking is
/// identical everywhere — subsets ascending, tables ascending, strict `<`
/// improvement — which is what makes chosen plans a pure function of the
/// subset cardinalities (the bitwise-determinism contract in
/// docs/optimizer.md §4).
JoinPlan DpOverSubsetCards(const std::vector<double>& subset_card, int k) {
  const uint32_t full = (1u << k) - 1u;
  std::vector<double> best_cost(full + 1, std::numeric_limits<double>::infinity());
  std::vector<int> best_last(full + 1, -1);
  for (int t = 0; t < k; ++t) best_cost[1u << t] = 0.0;
  for (uint32_t s = 1; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton
    for (int t = 0; t < k; ++t) {
      if (!(s & (1u << t))) continue;
      const double c = best_cost[s ^ (1u << t)];
      if (c < best_cost[s]) {
        best_cost[s] = c;
        best_last[s] = t;
      }
    }
    best_cost[s] += subset_card[s];
  }
  JoinPlan plan;
  plan.estimated_cost = best_cost[full];
  uint32_t s = full;
  while (s && (s & (s - 1)) != 0) {
    plan.order.push_back(best_last[s]);
    s ^= 1u << best_last[s];
  }
  for (int t = 0; t < k; ++t) {
    if (s & (1u << t)) plan.order.push_back(t);
  }
  std::reverse(plan.order.begin(), plan.order.end());
  return plan;
}

}  // namespace

JoinPlan StarJoinPlanner::BestOrderForCards(const std::vector<double>& cards) {
  const int k = num_tables();
  const uint32_t full = (1u << k) - 1u;
  // Estimated cardinality of a joined subset under the uniform-key formula:
  //   card(S) = prod cards / domain^(|S|-1).
  std::vector<double> subset_card(full + 1, 0.0);
  for (uint32_t s = 1; s <= full; ++s) {
    double prod = 1.0;
    int bits = 0;
    for (int t = 0; t < k; ++t) {
      if (s & (1u << t)) {
        prod *= std::max(cards[static_cast<size_t>(t)], 1.0);
        ++bits;
      }
    }
    subset_card[s] = prod / std::pow(static_cast<double>(key_domain_),
                                     static_cast<double>(bits - 1));
  }
  return DpOverSubsetCards(subset_card, k);
}

JoinPlan StarJoinPlanner::PlanWithEstimators(
    const std::vector<query::CardinalityEstimator*>& estimators) {
  DUET_CHECK_EQ(estimators.size(), query_.tables.size());
  std::vector<double> cards(query_.tables.size());
  for (size_t t = 0; t < query_.tables.size(); ++t) {
    DUET_CHECK(estimators[t] != nullptr);
    cards[t] = estimators[t]->EstimateCardinality(query_.filters[t],
                                                  query_.tables[t]->num_rows());
  }
  JoinPlan plan = BestOrderForCards(cards);
  plan.true_cost = TrueCOut(plan.order);
  return plan;
}

double StarJoinPlanner::ExactSubsetCard(uint32_t subset) const {
  const int k = num_tables();
  double card = 0.0;
  for (int32_t key = 0; key < key_domain_; ++key) {
    double prod = 1.0;
    for (int t = 0; t < k; ++t) {
      if (subset & (1u << t)) {
        prod *= static_cast<double>(
            key_counts_[static_cast<size_t>(t)][static_cast<size_t>(key)]);
      }
    }
    card += prod;
  }
  return card;
}

JoinPlan StarJoinPlanner::OptimalPlan() {
  // True subset cardinalities differ from the uniform-key formula, so run
  // the DP directly on exact per-subset C_out via per-key products.
  const int k = num_tables();
  const uint32_t full = (1u << k) - 1u;
  std::vector<double> subset_card(full + 1, 0.0);
  for (uint32_t s = 1; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;
    subset_card[s] = ExactSubsetCard(s);
  }
  JoinPlan plan = DpOverSubsetCards(subset_card, k);
  plan.true_cost = TrueCOut(plan.order);
  return plan;
}

double StarJoinPlanner::PlanCostRatio(const JoinPlan& plan) {
  const double opt = OptimalPlan().true_cost;
  return (plan.true_cost + 1.0) / (opt + 1.0);  // +1 guards empty joins
}

// ---------------------------------------------------------------------------
// Provider-driven join ordering
// ---------------------------------------------------------------------------

PlanSearchResult JoinOrderPlanner::Plan(CardinalityProvider& provider) {
  const int k = num_tables();
  const uint32_t full = (1u << k) - 1u;
  PlanSearchResult result;
  std::unique_ptr<CardinalityProvider::Session> session =
      provider.StartPlan(exact_.query());

  // One batched provider call per DP level: level ell requests every
  // subset of ell tables at once, so the provider can submit its whole
  // fan-out before waiting (the Submit-burst contract). Answers land in a
  // dense subset-indexed array the DP then runs on.
  std::vector<double> subset_card(full + 1, 0.0);
  std::vector<uint32_t> level_subsets;
  for (int level = 1; level <= k; ++level) {
    level_subsets.clear();
    for (uint32_t s = 1; s <= full; ++s) {
      if (__builtin_popcount(s) == level) level_subsets.push_back(s);
    }
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SubsetEstimate> answers = session->EstimateSubsets(level_subsets);
    result.estimation_micros +=
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
            .count();
    DUET_CHECK_EQ(answers.size(), level_subsets.size());
    result.levels++;
    for (size_t i = 0; i < level_subsets.size(); ++i) {
      result.subset_requests++;
      if (answers[i].degraded) result.degraded_estimates++;
      // Clamp instead of trusting: a degraded or diverged answer may be
      // negative, NaN or infinite, and one poisoned number must not poison
      // the whole search (a zero-cardinality estimate is a legal plan
      // input — e.g. a truly empty intermediate).
      double card = answers[i].cardinality;
      if (!std::isfinite(card) || card < 0.0) card = 0.0;
      subset_card[level_subsets[i]] = card;
    }
  }

  result.plan = DpOverSubsetCards(subset_card, k);
  result.plan.true_cost = exact_.TrueCOut(result.plan.order);
  return result;
}

}  // namespace duet::optimizer
