// Query-optimizer integration: the consumer the paper's introduction
// motivates ("most RDBMS's query optimizers evaluate the query plan
// according to the cardinality, so the query optimizer's effectiveness
// depends on accurate cardinality estimation").
//
// Two classic optimizer decisions are modeled, both driven by a pluggable
// query::CardinalityEstimator:
//
//  * Access-path selection on one table: sequential scan vs a simulated
//    unclustered secondary index, the textbook crossover that flips on the
//    predicate's selectivity.
//  * Left-deep join ordering for star joins over a shared key, chosen by
//    dynamic programming over subsets with the C_out cost metric (sum of
//    intermediate result sizes) — System-R-style enumeration. Intermediate
//    cardinalities are *estimated* through per-table selectivities plus the
//    uniform-key join formula, while *true* costs come from exact per-key
//    counting, so the gap between the plan chosen and the optimal plan
//    quantifies what an estimator's Q-error costs in plan quality
//    (the "plan-cost ratio", P-error of Han et al., paper ref [46]).
#ifndef DUET_OPTIMIZER_PLANNER_H_
#define DUET_OPTIMIZER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "query/estimator.h"
#include "query/query.h"

namespace duet::optimizer {

// ---------------------------------------------------------------------------
// Access-path selection
// ---------------------------------------------------------------------------

/// Cost constants (arbitrary units; ratios are what matter).
struct CostModel {
  /// Cost of touching one tuple in a sequential scan.
  double seq_tuple = 1.0;
  /// Random-access penalty per fetched tuple through an unclustered index.
  double index_tuple = 4.0;
  /// Index traversal overhead (B-tree descent).
  double index_lookup = 10.0;
};

/// One access-path decision.
struct AccessPath {
  /// -1 = sequential scan, otherwise the index column used.
  int index_col = -1;
  double estimated_cost = 0.0;
  bool is_seq_scan() const { return index_col < 0; }
  std::string DebugString() const;
};

/// Chooses scan vs index for a conjunctive query using the estimator's
/// per-column selectivities.
class AccessPathSelector {
 public:
  /// `indexed_columns` lists the columns carrying a secondary index.
  AccessPathSelector(const data::Table& table, std::vector<int> indexed_columns,
                     CostModel cost = {});

  /// The cheapest path under the estimator's selectivities.
  AccessPath Choose(const query::Query& query,
                    query::CardinalityEstimator& estimator) const;

  /// The cost a path actually incurs given the query's *true* per-column
  /// selectivities (computed exactly).
  double TrueCost(const query::Query& query, const AccessPath& path) const;

  /// The truly optimal path (Choose with an oracle).
  AccessPath OptimalPath(const query::Query& query) const;

 private:
  /// Cost of scanning through index `col` when the predicate on it selects
  /// `selectivity` of the table.
  double IndexCost(double selectivity) const;

  /// Exact selectivity of the query's predicates on one column.
  double TrueColumnSelectivity(const query::Query& query, int col) const;

  /// Exact selectivity of one code range on one column, answered from the
  /// per-column cumulative code histograms built at construction — O(1)
  /// instead of a row scan, with bit-identical results (integer hit counts,
  /// same final division).
  double SelectivityForRange(int col, const query::CodeRange& range) const;

  const data::Table& table_;
  std::vector<int> indexed_columns_;
  CostModel cost_;
  /// cum_counts_[c][k] = rows of column c with code < k (k in [0, ndv]).
  /// Built once per selector so TrueCost / OptimalPath scoring loops are
  /// O(columns) per query, not O(rows x columns).
  std::vector<std::vector<int64_t>> cum_counts_;
};

// ---------------------------------------------------------------------------
// Star-join ordering
// ---------------------------------------------------------------------------

/// A star join: every table joins on `join_col` (shared dictionary domain),
/// each with a local conjunctive filter.
struct StarJoinQuery {
  std::vector<const data::Table*> tables;
  std::vector<query::Query> filters;  // one per table
  int join_col = 0;
};

/// A left-deep join order with its costs.
struct JoinPlan {
  std::vector<int> order;      // table indices, join sequence
  double estimated_cost = 0.0; // C_out under the estimator
  double true_cost = 0.0;      // C_out under exact cardinalities
};

/// System-R style DP planner over left-deep orders, C_out metric.
class StarJoinPlanner {
 public:
  explicit StarJoinPlanner(StarJoinQuery query);

  /// Best order under the estimator's cardinalities; true_cost is filled in
  /// by exact evaluation of the chosen order.
  JoinPlan PlanWithEstimators(const std::vector<query::CardinalityEstimator*>& estimators);

  /// Best order under exact cardinalities (the oracle plan).
  JoinPlan OptimalPlan();

  /// true_cost(plan) / true_cost(optimal) >= 1; the plan-quality metric.
  double PlanCostRatio(const JoinPlan& plan);

  /// Exact C_out of a concrete order (exposed for tests).
  double TrueCOut(const std::vector<int>& order);

  /// Exact filtered cardinality of a joined table subset (bitmask over
  /// table indices), from per-key counting. The numbers OptimalPlan() runs
  /// its DP on — and what ExactCardinalityProvider serves, so an
  /// oracle-driven JoinOrderPlanner reproduces the optimal plan bitwise.
  double ExactSubsetCard(uint32_t subset) const;

  int num_tables() const { return static_cast<int>(query_.tables.size()); }
  const StarJoinQuery& query() const { return query_; }

 private:
  /// Exact per-key counts of table t's rows passing its local filter.
  std::vector<int64_t> FilteredKeyCounts(int t) const;

  /// DP over subsets minimizing sum-of-intermediates for left-deep orders,
  /// given per-table cardinalities and key NDVs.
  JoinPlan BestOrderForCards(const std::vector<double>& cards);

  StarJoinQuery query_;
  int32_t key_domain_ = 0;                       // shared key dictionary size
  std::vector<std::vector<int64_t>> key_counts_; // exact filtered key counts
  std::vector<double> true_cards_;               // exact filtered cardinalities
};

// ---------------------------------------------------------------------------
// Provider-driven join ordering
// ---------------------------------------------------------------------------

class CardinalityProvider;  // optimizer/card_provider.h

/// How a plan search went: the chosen plan plus the provider traffic it
/// generated (the degradation and batching observability the bench and the
/// resilience tests read).
struct PlanSearchResult {
  JoinPlan plan;
  /// Subset estimates requested from the provider (all DP levels).
  uint64_t subset_requests = 0;
  /// Requests answered with a degraded flag (fallback / shed / expired
  /// deadline / failed wire call). The plan is still valid — degraded
  /// numbers are clamped, never fatal.
  uint64_t degraded_estimates = 0;
  /// Provider round-trips (== table count: one batched call per DP level).
  int levels = 0;
  /// Wall-clock microseconds spent inside provider calls (the estimation
  /// cost of the plan search; what the batch-vs-sequential bench compares).
  double estimation_micros = 0.0;
};

/// Join-order planner over the CardinalityProvider seam: System-R left-deep
/// DP (C_out) whose subset cardinalities come from a provider, batched one
/// level at a time — level ell asks for ALL C(k, ell) subsets in one call
/// and waits once, so the provider can submit the whole fan-out before any
/// answer is needed (one keyed Submit burst per level against a serving
/// engine; see docs/optimizer.md §2). Exact per-key machinery for true
/// costs / P-error is delegated to an internal StarJoinPlanner.
class JoinOrderPlanner {
 public:
  explicit JoinOrderPlanner(StarJoinQuery query) : exact_(std::move(query)) {}

  /// Runs the DP with subset cardinalities from `provider`. Deterministic
  /// given the provider's numbers: ties break toward the lowest table
  /// index, so bitwise-equal cardinalities (the serving engine's batch /
  /// shard / fusion / SIMD-tier invariants) imply an identical plan.
  PlanSearchResult Plan(CardinalityProvider& provider);

  /// Best order under exact cardinalities (the oracle plan).
  JoinPlan OptimalPlan() { return exact_.OptimalPlan(); }

  /// true_cost(plan) / true_cost(optimal) >= 1; the plan-quality metric.
  double PlanCostRatio(const JoinPlan& plan) { return exact_.PlanCostRatio(plan); }

  /// Exact C_out of a concrete order.
  double TrueCOut(const std::vector<int>& order) { return exact_.TrueCOut(order); }

  /// The exact-counting core (also the seam ExactCardinalityProvider taps).
  StarJoinPlanner& exact() { return exact_; }

  const StarJoinQuery& query() const { return exact_.query(); }
  int num_tables() const { return exact_.num_tables(); }

 private:
  StarJoinPlanner exact_;
};

}  // namespace duet::optimizer

#endif  // DUET_OPTIMIZER_PLANNER_H_
